#include "lang/parser.h"

#include <algorithm>

#include "common/error.h"
#include "common/string_util.h"
#include "lang/lexer.h"
#include "nd/buffer.h"

namespace p2g::lang {

namespace {

bool is_type_name(const std::string& text) {
  try {
    nd::parse_element_type(text);
    return true;
  } catch (const Error&) {
    return false;
  }
}

class Parser {
 public:
  explicit Parser(std::vector<Token> tokens) : tokens_(std::move(tokens)) {}

  ModuleAst run() {
    ModuleAst module;
    while (!at(TokenKind::kEnd)) {
      if (at(TokenKind::kKwTimer)) {
        module.timers.push_back(parse_timer());
      } else if (at(TokenKind::kIdentifier) &&
                 is_type_name(peek().text)) {
        module.fields.push_back(parse_field());
      } else if (at(TokenKind::kIdentifier) &&
                 peek(1).kind == TokenKind::kColon) {
        module.kernels.push_back(parse_kernel());
      } else {
        fail("expected a field definition, timer or kernel definition");
      }
    }
    return module;
  }

 private:
  const Token& peek(size_t ahead = 0) const {
    const size_t i = std::min(pos_ + ahead, tokens_.size() - 1);
    return tokens_[i];
  }

  bool at(TokenKind kind) const { return peek().kind == kind; }

  Token advance() { return tokens_[std::min(pos_++, tokens_.size() - 1)]; }

  Token expect(TokenKind kind, const char* context) {
    if (!at(kind)) {
      fail(format("expected %s %s, found %s", token_kind_name(kind),
                  context, token_kind_name(peek().kind)));
    }
    return advance();
  }

  [[noreturn]] void fail(const std::string& message) const {
    throw_error(ErrorKind::kParse, format("line %d:%d: %s", peek().line,
                                          peek().column, message.c_str()));
  }

  // --- top level ------------------------------------------------------------

  TimerDefAst parse_timer() {
    TimerDefAst timer;
    timer.line = peek().line;
    expect(TokenKind::kKwTimer, "to start a timer definition");
    timer.name = expect(TokenKind::kIdentifier, "as timer name").text;
    expect(TokenKind::kSemicolon, "after timer definition");
    return timer;
  }

  /// TYPE brackets IDENT ["age"] ";"  e.g. `int32[] m_data age;`. A
  /// bracket group may declare a constant extent (`int32[8] data;`) used
  /// by static analysis only.
  FieldDefAst parse_field() {
    FieldDefAst field;
    field.line = peek().line;
    field.type_name = advance().text;
    while (at(TokenKind::kLBracket)) {
      advance();
      int64_t extent = -1;
      if (at(TokenKind::kIntLiteral)) {
        extent = advance().int_value;
        if (extent <= 0) fail("declared field extents must be positive");
      }
      expect(TokenKind::kRBracket, "to close []");
      field.extents.push_back(extent);
    }
    field.rank = static_cast<int>(field.extents.size());
    if (field.rank == 0) {
      fail("field definitions need at least one [] dimension");
    }
    // All-implicit extents stay empty: `int32[][] f` == no declaration.
    if (std::all_of(field.extents.begin(), field.extents.end(),
                    [](int64_t e) { return e < 0; })) {
      field.extents.clear();
    }
    field.name = expect(TokenKind::kIdentifier, "as field name").text;
    if (at(TokenKind::kKwAge)) {
      advance();
      field.aged = true;
    }
    expect(TokenKind::kSemicolon, "after field definition");
    return field;
  }

  int parse_brackets() {
    int rank = 0;
    while (at(TokenKind::kLBracket)) {
      advance();
      expect(TokenKind::kRBracket, "to close []");
      ++rank;
    }
    return rank;
  }

  KernelDefAst parse_kernel() {
    KernelDefAst kernel;
    kernel.line = peek().line;
    kernel.name = expect(TokenKind::kIdentifier, "as kernel name").text;
    expect(TokenKind::kColon, "after kernel name");

    while (true) {
      if (at(TokenKind::kEnd)) break;
      // A new kernel definition starts.
      if (at(TokenKind::kIdentifier) &&
          peek(1).kind == TokenKind::kColon) {
        break;
      }
      // A new field/timer definition starts.
      if (at(TokenKind::kKwTimer) ||
          (at(TokenKind::kIdentifier) && is_type_name(peek().text) &&
           peek(1).kind == TokenKind::kLBracket)) {
        break;
      }

      if (at(TokenKind::kKwAge)) {
        advance();
        kernel.age_var =
            expect(TokenKind::kIdentifier, "as age variable").text;
        expect(TokenKind::kSemicolon, "after age declaration");
      } else if (at(TokenKind::kKwIndex)) {
        advance();
        kernel.index_vars.push_back(
            expect(TokenKind::kIdentifier, "as index variable").text);
        while (at(TokenKind::kComma)) {
          advance();
          kernel.index_vars.push_back(
              expect(TokenKind::kIdentifier, "as index variable").text);
        }
        expect(TokenKind::kSemicolon, "after index declaration");
      } else if (at(TokenKind::kKwOnce)) {
        advance();
        kernel.once = true;
        expect(TokenKind::kSemicolon, "after 'once'");
      } else if (at(TokenKind::kKwSerial)) {
        advance();
        kernel.serial = true;
        expect(TokenKind::kSemicolon, "after 'serial'");
      } else if (at(TokenKind::kKwLocal)) {
        kernel.body.push_back(parse_local());
      } else if (at(TokenKind::kKwFetch)) {
        kernel.body.push_back(parse_fetch());
      } else if (at(TokenKind::kKwStore)) {
        kernel.body.push_back(parse_store());
      } else if (at(TokenKind::kCodeOpen)) {
        advance();
        while (!at(TokenKind::kCodeClose)) {
          if (at(TokenKind::kEnd)) fail("unterminated %{ block");
          kernel.body.push_back(parse_statement());
        }
        advance();
      } else {
        fail("expected a kernel clause (age/index/local/fetch/store/"
             "once/serial or a %{ block)");
      }
    }
    return kernel;
  }

  // --- statements -------------------------------------------------------------

  StmtPtr parse_local() {
    auto stmt = std::make_unique<Stmt>();
    stmt->kind = Stmt::Kind::kLocalDecl;
    stmt->line = peek().line;
    expect(TokenKind::kKwLocal, "to start a local declaration");
    stmt->type_name =
        expect(TokenKind::kIdentifier, "as local type").text;
    if (!is_type_name(stmt->type_name)) {
      fail("unknown type '" + stmt->type_name + "'");
    }
    stmt->rank = parse_brackets();
    stmt->name = expect(TokenKind::kIdentifier, "as local name").text;
    if (at(TokenKind::kAssign)) {
      advance();
      stmt->expr = parse_expression();
    }
    expect(TokenKind::kSemicolon, "after local declaration");
    return stmt;
  }

  StmtPtr parse_fetch() {
    auto stmt = std::make_unique<Stmt>();
    stmt->kind = Stmt::Kind::kFetch;
    stmt->line = peek().line;
    expect(TokenKind::kKwFetch, "to start a fetch statement");
    stmt->name =
        expect(TokenKind::kIdentifier, "as fetch target").text;
    expect(TokenKind::kAssign, "in fetch statement");
    stmt->access = parse_field_access();
    expect(TokenKind::kSemicolon, "after fetch statement");
    return stmt;
  }

  StmtPtr parse_store() {
    auto stmt = std::make_unique<Stmt>();
    stmt->kind = Stmt::Kind::kStore;
    stmt->line = peek().line;
    expect(TokenKind::kKwStore, "to start a store statement");
    stmt->access = parse_field_access();
    expect(TokenKind::kAssign, "in store statement");
    stmt->expr = parse_expression();
    expect(TokenKind::kSemicolon, "after store statement");
    return stmt;
  }

  FieldAccess parse_field_access() {
    FieldAccess access;
    access.field =
        expect(TokenKind::kIdentifier, "as field name").text;
    expect(TokenKind::kLParen, "for the age expression");
    if (at(TokenKind::kIntLiteral)) {
      access.age.kind = AgeRef::Kind::kConst;
      access.age.offset = advance().int_value;
    } else {
      access.age.kind = AgeRef::Kind::kRelative;
      access.age.var =
          expect(TokenKind::kIdentifier, "as age variable").text;
      if (at(TokenKind::kPlus) || at(TokenKind::kMinus)) {
        const bool negative = advance().kind == TokenKind::kMinus;
        const int64_t value =
            expect(TokenKind::kIntLiteral, "as age offset").int_value;
        access.age.offset = negative ? -value : value;
      }
    }
    expect(TokenKind::kRParen, "after the age expression");

    while (at(TokenKind::kLBracket)) {
      advance();
      SliceElem elem;
      if (at(TokenKind::kStar)) {
        advance();
        elem.kind = SliceElem::Kind::kAll;
      } else if (at(TokenKind::kIntLiteral)) {
        elem.kind = SliceElem::Kind::kConst;
        elem.value = advance().int_value;
      } else {
        elem.kind = SliceElem::Kind::kVar;
        elem.name =
            expect(TokenKind::kIdentifier, "as slice index").text;
      }
      expect(TokenKind::kRBracket, "to close the slice");
      access.slices.push_back(std::move(elem));
    }
    return access;
  }

  StmtPtr parse_statement() {
    switch (peek().kind) {
      case TokenKind::kKwLocal: return parse_local();
      case TokenKind::kKwFetch: return parse_fetch();
      case TokenKind::kKwStore: return parse_store();
      case TokenKind::kKwIf: return parse_if();
      case TokenKind::kKwWhile: return parse_while();
      case TokenKind::kKwFor: return parse_for();
      case TokenKind::kKwReturn: {
        auto stmt = std::make_unique<Stmt>();
        stmt->kind = Stmt::Kind::kReturn;
        stmt->line = peek().line;
        advance();
        expect(TokenKind::kSemicolon, "after return");
        return stmt;
      }
      case TokenKind::kLBrace: {
        // Brace blocks are flattened into an if(true) for simplicity.
        auto stmt = std::make_unique<Stmt>();
        stmt->kind = Stmt::Kind::kIf;
        stmt->line = peek().line;
        stmt->expr = std::make_unique<Expr>();
        stmt->expr->kind = Expr::Kind::kBoolLit;
        stmt->expr->int_value = 1;
        stmt->body = parse_block();
        return stmt;
      }
      case TokenKind::kIdentifier: {
        // Declaration (`int32 v = e;`) or assignment/expression statement.
        if (is_type_name(peek().text) &&
            (peek(1).kind == TokenKind::kIdentifier ||
             peek(1).kind == TokenKind::kLBracket)) {
          auto stmt = std::make_unique<Stmt>();
          stmt->kind = Stmt::Kind::kLocalDecl;
          stmt->line = peek().line;
          stmt->type_name = advance().text;
          stmt->rank = parse_brackets();
          stmt->name =
              expect(TokenKind::kIdentifier, "as variable name").text;
          if (at(TokenKind::kAssign)) {
            advance();
            stmt->expr = parse_expression();
          }
          expect(TokenKind::kSemicolon, "after declaration");
          return stmt;
        }
        return parse_assignment_or_call();
      }
      default:
        fail("expected a statement");
    }
  }

  Block parse_block() {
    Block block;
    expect(TokenKind::kLBrace, "to open a block");
    while (!at(TokenKind::kRBrace)) {
      if (at(TokenKind::kEnd)) fail("unterminated block");
      block.push_back(parse_statement());
    }
    advance();
    return block;
  }

  Block parse_body_or_single() {
    if (at(TokenKind::kLBrace)) return parse_block();
    Block block;
    block.push_back(parse_statement());
    return block;
  }

  StmtPtr parse_if() {
    auto stmt = std::make_unique<Stmt>();
    stmt->kind = Stmt::Kind::kIf;
    stmt->line = peek().line;
    expect(TokenKind::kKwIf, "");
    expect(TokenKind::kLParen, "after if");
    stmt->expr = parse_expression();
    expect(TokenKind::kRParen, "after if condition");
    stmt->body = parse_body_or_single();
    if (at(TokenKind::kKwElse)) {
      advance();
      stmt->else_body = parse_body_or_single();
    }
    return stmt;
  }

  StmtPtr parse_while() {
    auto stmt = std::make_unique<Stmt>();
    stmt->kind = Stmt::Kind::kWhile;
    stmt->line = peek().line;
    expect(TokenKind::kKwWhile, "");
    expect(TokenKind::kLParen, "after while");
    stmt->expr = parse_expression();
    expect(TokenKind::kRParen, "after while condition");
    stmt->body = parse_body_or_single();
    return stmt;
  }

  StmtPtr parse_for() {
    auto stmt = std::make_unique<Stmt>();
    stmt->kind = Stmt::Kind::kFor;
    stmt->line = peek().line;
    expect(TokenKind::kKwFor, "");
    expect(TokenKind::kLParen, "after for");
    if (!at(TokenKind::kSemicolon)) {
      stmt->for_init = parse_statement();  // consumes its semicolon
    } else {
      advance();
    }
    if (!at(TokenKind::kSemicolon)) {
      stmt->expr = parse_expression();
    }
    expect(TokenKind::kSemicolon, "after for condition");
    if (!at(TokenKind::kRParen)) {
      stmt->for_step = parse_assignment_or_call(/*expect_semicolon=*/false);
    }
    expect(TokenKind::kRParen, "after for header");
    stmt->body = parse_body_or_single();
    return stmt;
  }

  StmtPtr parse_assignment_or_call(bool expect_semicolon = true) {
    auto stmt = std::make_unique<Stmt>();
    stmt->line = peek().line;
    const std::string name =
        expect(TokenKind::kIdentifier, "to start a statement").text;

    if (at(TokenKind::kLParen)) {
      // Call statement: print(...), put(...), continue_age(), ...
      stmt->kind = Stmt::Kind::kExpr;
      stmt->expr = parse_call(name);
    } else {
      stmt->kind = Stmt::Kind::kAssign;
      stmt->name = name;
      while (at(TokenKind::kLBracket)) {
        advance();
        stmt->indices.push_back(parse_expression());
        expect(TokenKind::kRBracket, "to close index");
      }
      switch (peek().kind) {
        case TokenKind::kAssign:
          advance();
          stmt->assign_op = AssignOp::kAssign;
          stmt->expr = parse_expression();
          break;
        case TokenKind::kPlusAssign:
          advance();
          stmt->assign_op = AssignOp::kAdd;
          stmt->expr = parse_expression();
          break;
        case TokenKind::kMinusAssign:
          advance();
          stmt->assign_op = AssignOp::kSub;
          stmt->expr = parse_expression();
          break;
        case TokenKind::kStarAssign:
          advance();
          stmt->assign_op = AssignOp::kMul;
          stmt->expr = parse_expression();
          break;
        case TokenKind::kSlashAssign:
          advance();
          stmt->assign_op = AssignOp::kDiv;
          stmt->expr = parse_expression();
          break;
        case TokenKind::kPlusPlus:
        case TokenKind::kMinusMinus: {
          const bool inc = advance().kind == TokenKind::kPlusPlus;
          stmt->assign_op = inc ? AssignOp::kAdd : AssignOp::kSub;
          stmt->expr = std::make_unique<Expr>();
          stmt->expr->kind = Expr::Kind::kIntLit;
          stmt->expr->int_value = 1;
          break;
        }
        default:
          fail("expected an assignment operator");
      }
    }
    if (expect_semicolon) {
      expect(TokenKind::kSemicolon, "after statement");
    }
    return stmt;
  }

  // --- expressions (precedence climbing) --------------------------------------

  ExprPtr parse_expression() { return parse_or(); }

  ExprPtr parse_or() {
    ExprPtr lhs = parse_and();
    while (at(TokenKind::kOrOr)) {
      advance();
      lhs = make_binary(BinaryOp::kOr, std::move(lhs), parse_and());
    }
    return lhs;
  }

  ExprPtr parse_and() {
    ExprPtr lhs = parse_comparison();
    while (at(TokenKind::kAndAnd)) {
      advance();
      lhs = make_binary(BinaryOp::kAnd, std::move(lhs), parse_comparison());
    }
    return lhs;
  }

  ExprPtr parse_comparison() {
    ExprPtr lhs = parse_additive();
    while (true) {
      BinaryOp op;
      switch (peek().kind) {
        case TokenKind::kEq: op = BinaryOp::kEq; break;
        case TokenKind::kNe: op = BinaryOp::kNe; break;
        case TokenKind::kLt: op = BinaryOp::kLt; break;
        case TokenKind::kLe: op = BinaryOp::kLe; break;
        case TokenKind::kGt: op = BinaryOp::kGt; break;
        case TokenKind::kGe: op = BinaryOp::kGe; break;
        default: return lhs;
      }
      advance();
      lhs = make_binary(op, std::move(lhs), parse_additive());
    }
  }

  ExprPtr parse_additive() {
    ExprPtr lhs = parse_multiplicative();
    while (at(TokenKind::kPlus) || at(TokenKind::kMinus)) {
      const BinaryOp op =
          advance().kind == TokenKind::kPlus ? BinaryOp::kAdd
                                             : BinaryOp::kSub;
      lhs = make_binary(op, std::move(lhs), parse_multiplicative());
    }
    return lhs;
  }

  ExprPtr parse_multiplicative() {
    ExprPtr lhs = parse_unary();
    while (at(TokenKind::kStar) || at(TokenKind::kSlash) ||
           at(TokenKind::kPercent)) {
      BinaryOp op = BinaryOp::kMul;
      if (peek().kind == TokenKind::kSlash) op = BinaryOp::kDiv;
      if (peek().kind == TokenKind::kPercent) op = BinaryOp::kMod;
      advance();
      lhs = make_binary(op, std::move(lhs), parse_unary());
    }
    return lhs;
  }

  ExprPtr parse_unary() {
    if (at(TokenKind::kMinus) || at(TokenKind::kNot)) {
      auto expr = std::make_unique<Expr>();
      expr->kind = Expr::Kind::kUnary;
      expr->line = peek().line;
      expr->unary_op = advance().kind == TokenKind::kMinus ? UnaryOp::kNeg
                                                           : UnaryOp::kNot;
      expr->lhs = parse_unary();
      return expr;
    }
    return parse_primary();
  }

  ExprPtr parse_primary() {
    auto expr = std::make_unique<Expr>();
    expr->line = peek().line;
    switch (peek().kind) {
      case TokenKind::kIntLiteral:
        expr->kind = Expr::Kind::kIntLit;
        expr->int_value = advance().int_value;
        return expr;
      case TokenKind::kFloatLiteral:
        expr->kind = Expr::Kind::kFloatLit;
        expr->float_value = advance().float_value;
        return expr;
      case TokenKind::kStringLiteral:
        expr->kind = Expr::Kind::kStringLit;
        expr->string_value = advance().text;
        return expr;
      case TokenKind::kKwTrue:
      case TokenKind::kKwFalse:
        expr->kind = Expr::Kind::kBoolLit;
        expr->int_value = advance().kind == TokenKind::kKwTrue ? 1 : 0;
        return expr;
      case TokenKind::kLParen: {
        advance();
        ExprPtr inner = parse_expression();
        expect(TokenKind::kRParen, "to close parenthesis");
        return inner;
      }
      case TokenKind::kIdentifier: {
        const std::string name = advance().text;
        if (at(TokenKind::kLParen)) return parse_call(name);
        if (at(TokenKind::kLBracket)) {
          expr->kind = Expr::Kind::kIndex;
          expr->name = name;
          while (at(TokenKind::kLBracket)) {
            advance();
            expr->args.push_back(parse_expression());
            expect(TokenKind::kRBracket, "to close index");
          }
          return expr;
        }
        expr->kind = Expr::Kind::kVarRef;
        expr->name = name;
        return expr;
      }
      default:
        fail("expected an expression");
    }
  }

  ExprPtr parse_call(const std::string& callee) {
    auto expr = std::make_unique<Expr>();
    expr->kind = Expr::Kind::kCall;
    expr->line = peek().line;
    expr->name = callee;
    expect(TokenKind::kLParen, "after call name");
    if (!at(TokenKind::kRParen)) {
      expr->args.push_back(parse_expression());
      while (at(TokenKind::kComma)) {
        advance();
        expr->args.push_back(parse_expression());
      }
    }
    expect(TokenKind::kRParen, "to close call");
    return expr;
  }

  ExprPtr make_binary(BinaryOp op, ExprPtr lhs, ExprPtr rhs) {
    auto expr = std::make_unique<Expr>();
    expr->kind = Expr::Kind::kBinary;
    expr->line = lhs->line;
    expr->binary_op = op;
    expr->lhs = std::move(lhs);
    expr->rhs = std::move(rhs);
    return expr;
  }

  std::vector<Token> tokens_;
  size_t pos_ = 0;
};

}  // namespace

ModuleAst parse_module(const std::string& source) {
  return Parser(tokenize(source)).run();
}

}  // namespace p2g::lang
