// C++ code generator: the paper's compiler pipeline (§VI-A).
//
// "We decided to compile P2G programs into C++ files, which can be further
// compiled and linked with native code blocks ... resulting in a
// lightweight P2G compiler." generate_cpp() emits a translation unit that
// builds the same Program through the public C++ API, with kernel bodies
// translated statement by statement; with_main adds a main() so the result
// links into a complete binary against the P2G libraries.
#pragma once

#include <string>

#include "lang/ast.h"
#include "lang/sema.h"

namespace p2g::lang {

struct CodegenOptions {
  /// Emit a main() that runs the program (argv[1] = max age, argv[2] =
  /// worker count) and prints the instrumentation table.
  bool with_main = false;
  /// Name used in the generated header comment.
  std::string source_name = "<memory>";
};

/// Emits a complete C++ translation unit for the analyzed module.
std::string generate_cpp(const ModuleAst& module, const ModuleInfo& info,
                         const CodegenOptions& options = {});

/// Convenience: parse + analyze + generate.
std::string generate_cpp_from_source(const std::string& source,
                                     const CodegenOptions& options = {});

}  // namespace p2g::lang
