#include "lang/lexer.h"

#include <cctype>
#include <map>

#include "common/error.h"
#include "common/string_util.h"

namespace p2g::lang {

const char* token_kind_name(TokenKind kind) {
  switch (kind) {
    case TokenKind::kEnd: return "end of input";
    case TokenKind::kIdentifier: return "identifier";
    case TokenKind::kIntLiteral: return "integer literal";
    case TokenKind::kFloatLiteral: return "float literal";
    case TokenKind::kStringLiteral: return "string literal";
    case TokenKind::kKwAge: return "'age'";
    case TokenKind::kKwIndex: return "'index'";
    case TokenKind::kKwLocal: return "'local'";
    case TokenKind::kKwFetch: return "'fetch'";
    case TokenKind::kKwStore: return "'store'";
    case TokenKind::kKwTimer: return "'timer'";
    case TokenKind::kKwOnce: return "'once'";
    case TokenKind::kKwSerial: return "'serial'";
    case TokenKind::kKwIf: return "'if'";
    case TokenKind::kKwElse: return "'else'";
    case TokenKind::kKwWhile: return "'while'";
    case TokenKind::kKwFor: return "'for'";
    case TokenKind::kKwReturn: return "'return'";
    case TokenKind::kKwTrue: return "'true'";
    case TokenKind::kKwFalse: return "'false'";
    case TokenKind::kLParen: return "'('";
    case TokenKind::kRParen: return "')'";
    case TokenKind::kLBracket: return "'['";
    case TokenKind::kRBracket: return "']'";
    case TokenKind::kLBrace: return "'{'";
    case TokenKind::kRBrace: return "'}'";
    case TokenKind::kCodeOpen: return "'%{'";
    case TokenKind::kCodeClose: return "'%}'";
    case TokenKind::kSemicolon: return "';'";
    case TokenKind::kComma: return "','";
    case TokenKind::kColon: return "':'";
    case TokenKind::kAssign: return "'='";
    case TokenKind::kPlus: return "'+'";
    case TokenKind::kMinus: return "'-'";
    case TokenKind::kStar: return "'*'";
    case TokenKind::kSlash: return "'/'";
    case TokenKind::kPercent: return "'%'";
    case TokenKind::kPlusAssign: return "'+='";
    case TokenKind::kMinusAssign: return "'-='";
    case TokenKind::kStarAssign: return "'*='";
    case TokenKind::kSlashAssign: return "'/='";
    case TokenKind::kPlusPlus: return "'++'";
    case TokenKind::kMinusMinus: return "'--'";
    case TokenKind::kEq: return "'=='";
    case TokenKind::kNe: return "'!='";
    case TokenKind::kLt: return "'<'";
    case TokenKind::kLe: return "'<='";
    case TokenKind::kGt: return "'>'";
    case TokenKind::kGe: return "'>='";
    case TokenKind::kAndAnd: return "'&&'";
    case TokenKind::kOrOr: return "'||'";
    case TokenKind::kNot: return "'!'";
  }
  return "?";
}

namespace {

const std::map<std::string, TokenKind>& keywords() {
  static const std::map<std::string, TokenKind> map = {
      {"age", TokenKind::kKwAge},       {"index", TokenKind::kKwIndex},
      {"local", TokenKind::kKwLocal},   {"fetch", TokenKind::kKwFetch},
      {"store", TokenKind::kKwStore},   {"timer", TokenKind::kKwTimer},
      {"once", TokenKind::kKwOnce},     {"serial", TokenKind::kKwSerial},
      {"if", TokenKind::kKwIf},         {"else", TokenKind::kKwElse},
      {"while", TokenKind::kKwWhile},   {"for", TokenKind::kKwFor},
      {"return", TokenKind::kKwReturn}, {"true", TokenKind::kKwTrue},
      {"false", TokenKind::kKwFalse},
  };
  return map;
}

class Lexer {
 public:
  explicit Lexer(const std::string& source) : src_(source) {}

  std::vector<Token> run() {
    std::vector<Token> tokens;
    while (true) {
      skip_whitespace_and_comments();
      Token token = next_token();
      const bool end = token.kind == TokenKind::kEnd;
      tokens.push_back(std::move(token));
      if (end) break;
    }
    return tokens;
  }

 private:
  [[noreturn]] void fail(const std::string& message) const {
    throw_error(ErrorKind::kParse,
                format("line %d:%d: %s", line_, column_, message.c_str()));
  }

  char peek(size_t ahead = 0) const {
    return pos_ + ahead < src_.size() ? src_[pos_ + ahead] : '\0';
  }

  char advance() {
    const char c = peek();
    ++pos_;
    if (c == '\n') {
      ++line_;
      column_ = 1;
    } else {
      ++column_;
    }
    return c;
  }

  void skip_whitespace_and_comments() {
    while (true) {
      const char c = peek();
      if (c == ' ' || c == '\t' || c == '\r' || c == '\n') {
        advance();
      } else if (c == '/' && peek(1) == '/') {
        while (peek() != '\n' && peek() != '\0') advance();
      } else if (c == '/' && peek(1) == '*') {
        advance();
        advance();
        while (!(peek() == '*' && peek(1) == '/')) {
          if (peek() == '\0') fail("unterminated block comment");
          advance();
        }
        advance();
        advance();
      } else {
        return;
      }
    }
  }

  Token make(TokenKind kind, std::string text = {}) {
    Token token;
    token.kind = kind;
    token.text = std::move(text);
    token.line = line_;
    token.column = column_;
    return token;
  }

  Token next_token() {
    if (peek() == '\0') return make(TokenKind::kEnd);
    const int line = line_;
    const int column = column_;
    const char c = peek();

    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      std::string text;
      while (std::isalnum(static_cast<unsigned char>(peek())) ||
             peek() == '_') {
        text.push_back(advance());
      }
      Token token;
      const auto kw = keywords().find(text);
      token.kind =
          kw != keywords().end() ? kw->second : TokenKind::kIdentifier;
      token.text = std::move(text);
      token.line = line;
      token.column = column;
      return token;
    }

    if (std::isdigit(static_cast<unsigned char>(c))) {
      std::string text;
      bool is_float = false;
      while (std::isdigit(static_cast<unsigned char>(peek()))) {
        text.push_back(advance());
      }
      if (peek() == '.' &&
          std::isdigit(static_cast<unsigned char>(peek(1)))) {
        is_float = true;
        text.push_back(advance());
        while (std::isdigit(static_cast<unsigned char>(peek()))) {
          text.push_back(advance());
        }
      }
      Token token;
      token.kind =
          is_float ? TokenKind::kFloatLiteral : TokenKind::kIntLiteral;
      token.text = text;
      if (is_float) {
        token.float_value = std::stod(text);
      } else {
        token.int_value = std::stoll(text);
      }
      token.line = line;
      token.column = column;
      return token;
    }

    if (c == '"') {
      advance();
      std::string text;
      while (peek() != '"') {
        if (peek() == '\0') fail("unterminated string literal");
        if (peek() == '\\') {
          advance();
          const char esc = advance();
          switch (esc) {
            case 'n': text.push_back('\n'); break;
            case 't': text.push_back('\t'); break;
            case '\\': text.push_back('\\'); break;
            case '"': text.push_back('"'); break;
            default: fail("unknown escape sequence");
          }
        } else {
          text.push_back(advance());
        }
      }
      advance();
      Token token = make(TokenKind::kStringLiteral, text);
      token.line = line;
      token.column = column;
      return token;
    }

    auto two = [&](char second, TokenKind double_kind,
                   TokenKind single_kind) {
      advance();
      if (peek() == second) {
        advance();
        return make(double_kind);
      }
      return make(single_kind);
    };

    switch (c) {
      case '%':
        if (peek(1) == '{') {
          advance();
          advance();
          return make(TokenKind::kCodeOpen);
        }
        if (peek(1) == '}') {
          advance();
          advance();
          return make(TokenKind::kCodeClose);
        }
        advance();
        return make(TokenKind::kPercent);
      case '(': advance(); return make(TokenKind::kLParen);
      case ')': advance(); return make(TokenKind::kRParen);
      case '[': advance(); return make(TokenKind::kLBracket);
      case ']': advance(); return make(TokenKind::kRBracket);
      case '{': advance(); return make(TokenKind::kLBrace);
      case '}': advance(); return make(TokenKind::kRBrace);
      case ';': advance(); return make(TokenKind::kSemicolon);
      case ',': advance(); return make(TokenKind::kComma);
      case ':': advance(); return make(TokenKind::kColon);
      case '+':
        advance();
        if (peek() == '=') { advance(); return make(TokenKind::kPlusAssign); }
        if (peek() == '+') { advance(); return make(TokenKind::kPlusPlus); }
        return make(TokenKind::kPlus);
      case '-':
        advance();
        if (peek() == '=') { advance(); return make(TokenKind::kMinusAssign); }
        if (peek() == '-') { advance(); return make(TokenKind::kMinusMinus); }
        return make(TokenKind::kMinus);
      case '*': return two('=', TokenKind::kStarAssign, TokenKind::kStar);
      case '/': return two('=', TokenKind::kSlashAssign, TokenKind::kSlash);
      case '=': return two('=', TokenKind::kEq, TokenKind::kAssign);
      case '!': return two('=', TokenKind::kNe, TokenKind::kNot);
      case '<': return two('=', TokenKind::kLe, TokenKind::kLt);
      case '>': return two('=', TokenKind::kGe, TokenKind::kGt);
      case '&':
        advance();
        if (peek() == '&') { advance(); return make(TokenKind::kAndAnd); }
        fail("unexpected '&'");
      case '|':
        advance();
        if (peek() == '|') { advance(); return make(TokenKind::kOrOr); }
        fail("unexpected '|'");
      default:
        fail(format("unexpected character '%c'", c));
    }
  }

  const std::string& src_;
  size_t pos_ = 0;
  int line_ = 1;
  int column_ = 1;
};

}  // namespace

std::vector<Token> tokenize(const std::string& source) {
  return Lexer(source).run();
}

}  // namespace p2g::lang
