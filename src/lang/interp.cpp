#include "lang/interp.h"

#include <algorithm>
#include <cmath>
#include <map>
#include <sstream>

#include "common/error.h"
#include "common/string_util.h"
#include "core/context.h"
#include "nd/buffer.h"

namespace p2g::lang {

namespace {

bool is_float_type(nd::ElementType type) {
  return type == nd::ElementType::kFloat32 ||
         type == nd::ElementType::kFloat64;
}

/// A runtime value of the interpreted language.
struct Value {
  enum class Kind { kInt, kFloat, kArray };
  Kind kind = Kind::kInt;
  int64_t i = 0;
  double f = 0.0;
  std::shared_ptr<nd::AnyBuffer> array;

  static Value of_int(int64_t v) {
    Value out;
    out.kind = Kind::kInt;
    out.i = v;
    return out;
  }
  static Value of_float(double v) {
    Value out;
    out.kind = Kind::kFloat;
    out.f = v;
    return out;
  }
  static Value of_array(std::shared_ptr<nd::AnyBuffer> arr) {
    Value out;
    out.kind = Kind::kArray;
    out.array = std::move(arr);
    return out;
  }

  int64_t as_int() const {
    check_argument(kind != Kind::kArray, "array used as scalar");
    return kind == Kind::kInt ? i : static_cast<int64_t>(f);
  }
  double as_float() const {
    check_argument(kind != Kind::kArray, "array used as scalar");
    return kind == Kind::kInt ? static_cast<double>(i) : f;
  }
  bool truthy() const { return as_int() != 0 || as_float() != 0.0; }
};

/// Field metadata needed by store statements, captured at compile time.
struct FieldMeta {
  nd::ElementType type;
  size_t rank;
};

/// Everything the interpreted kernel bodies share.
struct SharedState {
  ModuleAst module;
  ModuleInfo info;
  std::map<std::string, FieldMeta> fields;
  std::shared_ptr<PrintSink> printed;
};

class Interp {
 public:
  Interp(const SharedState& shared, size_t kernel_index, KernelContext& ctx)
      : shared_(shared),
        kernel_(shared.module.kernels[kernel_index]),
        info_(shared.info.kernels[kernel_index]),
        ctx_(ctx) {}

  void run() {
    // Bind age and index variables.
    if (!kernel_.age_var.empty()) {
      env_[kernel_.age_var] = Value::of_int(ctx_.age());
    }
    for (size_t v = 0; v < kernel_.index_vars.size(); ++v) {
      env_[kernel_.index_vars[v]] = Value::of_int(ctx_.indices()[v]);
    }
    exec_block(kernel_.body);
  }

 private:
  [[noreturn]] void fail(int line, const std::string& message) const {
    throw_error(ErrorKind::kSema, format("kernel '%s' line %d: %s",
                                         kernel_.name.c_str(), line,
                                         message.c_str()));
  }

  Value& variable(const std::string& name, int line) {
    const auto it = env_.find(name);
    if (it == env_.end()) fail(line, "variable '" + name + "' unset");
    return it->second;
  }

  // Returns true when a `return` statement fired.
  bool exec_block(const Block& block) {
    for (const StmtPtr& stmt : block) {
      if (exec_stmt(*stmt)) return true;
    }
    return false;
  }

  bool exec_stmt(const Stmt& stmt) {
    switch (stmt.kind) {
      case Stmt::Kind::kLocalDecl: {
        const nd::ElementType type =
            nd::parse_element_type(stmt.type_name);
        if (stmt.rank > 0) {
          env_[stmt.name] = Value::of_array(std::make_shared<nd::AnyBuffer>(
              type, nd::Extents(std::vector<int64_t>(
                        static_cast<size_t>(stmt.rank), 0))));
        } else if (stmt.expr) {
          const Value init = eval(*stmt.expr);
          env_[stmt.name] = is_float_type(type)
                                ? Value::of_float(init.as_float())
                                : Value::of_int(init.as_int());
        } else {
          env_[stmt.name] = is_float_type(type) ? Value::of_float(0.0)
                                                : Value::of_int(0);
        }
        return false;
      }
      case Stmt::Kind::kAssign: {
        const Value rhs = eval(*stmt.expr);
        if (!stmt.indices.empty()) {
          Value& arr = variable(stmt.name, stmt.line);
          if (arr.kind != Value::Kind::kArray) {
            fail(stmt.line, "'" + stmt.name + "' is not an array");
          }
          std::vector<int64_t> idx;
          for (const ExprPtr& e : stmt.indices) {
            idx.push_back(eval(*e).as_int());
          }
          // Compound ops read the old element first.
          double value = rhs.as_float();
          if (stmt.assign_op != AssignOp::kAssign) {
            const double old = element_of(*arr.array, idx, stmt.line);
            value = apply_compound(old, rhs.as_float(), stmt.assign_op);
          }
          put_element(*arr.array, idx, value, stmt.line);
          return false;
        }
        Value& target = variable(stmt.name, stmt.line);
        if (target.kind == Value::Kind::kArray) {
          fail(stmt.line, "cannot assign a scalar to array '" + stmt.name +
                              "'");
        }
        if (stmt.assign_op == AssignOp::kAssign) {
          if (target.kind == Value::Kind::kFloat) {
            target = Value::of_float(rhs.as_float());
          } else {
            target = Value::of_int(rhs.as_int());
          }
        } else if (target.kind == Value::Kind::kFloat) {
          target = Value::of_float(apply_compound(
              target.as_float(), rhs.as_float(), stmt.assign_op));
        } else {
          target = Value::of_int(apply_compound_int(
              target.as_int(), rhs.as_int(), stmt.assign_op, stmt.line));
        }
        return false;
      }
      case Stmt::Kind::kExpr:
        eval(*stmt.expr);
        return false;
      case Stmt::Kind::kIf:
        return eval(*stmt.expr).truthy() ? exec_block(stmt.body)
                                         : exec_block(stmt.else_body);
      case Stmt::Kind::kWhile: {
        int64_t guard = 0;
        while (eval(*stmt.expr).truthy()) {
          if (exec_block(stmt.body)) return true;
          if (++guard > 100'000'000) {
            fail(stmt.line, "while loop exceeded the iteration guard");
          }
        }
        return false;
      }
      case Stmt::Kind::kFor: {
        if (stmt.for_init && exec_stmt(*stmt.for_init)) return true;
        int64_t guard = 0;
        while (stmt.expr == nullptr || eval(*stmt.expr).truthy()) {
          if (exec_block(stmt.body)) return true;
          if (stmt.for_step && exec_stmt(*stmt.for_step)) return true;
          if (++guard > 100'000'000) {
            fail(stmt.line, "for loop exceeded the iteration guard");
          }
        }
        return false;
      }
      case Stmt::Kind::kReturn:
        return true;
      case Stmt::Kind::kFetch: {
        // The runtime prepared this slot under the target variable's name.
        const nd::ConstView& data = ctx_.fetch_view(stmt.name);
        const bool elementwise =
            !stmt.access.slices.empty() &&
            std::all_of(stmt.access.slices.begin(),
                        stmt.access.slices.end(), [](const SliceElem& e) {
                          return e.kind != SliceElem::Kind::kAll;
                        });
        if (elementwise) {
          // Scalar read straight off the view — no packed copy at all.
          env_[stmt.name] = is_float_type(data.type())
                                ? Value::of_float(data.get_as_double(0))
                                : Value::of_int(data.get_as_int(0));
        } else {
          // Array values are mutable in the language; materialize one
          // packed copy (previously this was two copies: fetch + here).
          env_[stmt.name] = Value::of_array(
              std::make_shared<nd::AnyBuffer>(data.materialize()));
        }
        return false;
      }
      case Stmt::Kind::kStore: {
        const std::string slot = "s" + std::to_string(stmt.rank);
        const FieldMeta& meta = shared_.fields.at(stmt.access.field);
        const Value value = eval(*stmt.expr);
        if (value.kind == Value::Kind::kArray) {
          nd::AnyBuffer payload = *value.array;
          if (payload.type() != meta.type) {
            // Convert elementwise to the field's type.
            nd::AnyBuffer converted(meta.type, payload.extents());
            for (int64_t i = 0; i < payload.element_count(); ++i) {
              converted.set_from_double(i, payload.get_as_double(i));
            }
            payload = std::move(converted);
          }
          ctx_.store_array(slot, std::move(payload));
        } else {
          nd::AnyBuffer payload(meta.type, nd::Extents({1}));
          if (is_float_type(meta.type)) {
            payload.set_from_double(0, value.as_float());
          } else {
            payload.set_from_int(0, value.as_int());
          }
          ctx_.store_array(slot, std::move(payload));
        }
        return false;
      }
    }
    return false;
  }

  static double apply_compound(double old, double rhs, AssignOp op) {
    switch (op) {
      case AssignOp::kAssign: return rhs;
      case AssignOp::kAdd: return old + rhs;
      case AssignOp::kSub: return old - rhs;
      case AssignOp::kMul: return old * rhs;
      case AssignOp::kDiv: return old / rhs;
    }
    return rhs;
  }

  int64_t apply_compound_int(int64_t old, int64_t rhs, AssignOp op,
                             int line) const {
    switch (op) {
      case AssignOp::kAssign: return rhs;
      case AssignOp::kAdd: return old + rhs;
      case AssignOp::kSub: return old - rhs;
      case AssignOp::kMul: return old * rhs;
      case AssignOp::kDiv:
        if (rhs == 0) fail(line, "integer division by zero");
        return old / rhs;
    }
    return rhs;
  }

  double element_of(const nd::AnyBuffer& arr,
                    const std::vector<int64_t>& idx, int line) const {
    if (!arr.extents().contains(idx)) {
      fail(line, "array index out of range");
    }
    return arr.get_as_double(arr.extents().flatten(idx));
  }

  void put_element(nd::AnyBuffer& arr, const std::vector<int64_t>& idx,
                   double value, int line) {
    if (idx.size() != arr.extents().rank()) {
      fail(line, "wrong number of indices");
    }
    for (int64_t v : idx) {
      if (v < 0) fail(line, "negative array index");
    }
    if (!arr.extents().contains(idx)) {
      // Implicit local resizing (paper §V-C: "the local field values is
      // resized locally").
      std::vector<int64_t> dims(arr.extents().dims());
      for (size_t d = 0; d < dims.size(); ++d) {
        dims[d] = std::max(dims[d], idx[d] + 1);
      }
      arr.resize(nd::Extents(std::move(dims)));
    }
    if (is_float_type(arr.type())) {
      arr.set_from_double(arr.extents().flatten(idx), value);
    } else {
      arr.set_from_int(arr.extents().flatten(idx),
                       static_cast<int64_t>(value));
    }
  }

  Value eval(const Expr& expr) {
    switch (expr.kind) {
      case Expr::Kind::kIntLit:
      case Expr::Kind::kBoolLit:
        return Value::of_int(expr.int_value);
      case Expr::Kind::kFloatLit:
        return Value::of_float(expr.float_value);
      case Expr::Kind::kStringLit:
        fail(expr.line, "strings are only allowed inside print()");
      case Expr::Kind::kVarRef:
        return variable(expr.name, expr.line);
      case Expr::Kind::kIndex: {
        Value& arr = variable(expr.name, expr.line);
        if (arr.kind != Value::Kind::kArray) {
          fail(expr.line, "'" + expr.name + "' is not an array");
        }
        std::vector<int64_t> idx;
        for (const ExprPtr& e : expr.args) {
          idx.push_back(eval(*e).as_int());
        }
        const double value = element_of(*arr.array, idx, expr.line);
        return is_float_type(arr.array->type())
                   ? Value::of_float(value)
                   : Value::of_int(static_cast<int64_t>(value));
      }
      case Expr::Kind::kUnary: {
        const Value operand = eval(*expr.lhs);
        if (expr.unary_op == UnaryOp::kNot) {
          return Value::of_int(operand.truthy() ? 0 : 1);
        }
        return operand.kind == Value::Kind::kFloat
                   ? Value::of_float(-operand.as_float())
                   : Value::of_int(-operand.as_int());
      }
      case Expr::Kind::kBinary:
        return eval_binary(expr);
      case Expr::Kind::kCall:
        return eval_call(expr);
    }
    fail(expr.line, "unhandled expression");
  }

  Value eval_binary(const Expr& expr) {
    const Value lhs = eval(*expr.lhs);
    // Short-circuit logic.
    if (expr.binary_op == BinaryOp::kAnd) {
      if (!lhs.truthy()) return Value::of_int(0);
      return Value::of_int(eval(*expr.rhs).truthy() ? 1 : 0);
    }
    if (expr.binary_op == BinaryOp::kOr) {
      if (lhs.truthy()) return Value::of_int(1);
      return Value::of_int(eval(*expr.rhs).truthy() ? 1 : 0);
    }
    const Value rhs = eval(*expr.rhs);
    const bool float_math = lhs.kind == Value::Kind::kFloat ||
                            rhs.kind == Value::Kind::kFloat;
    switch (expr.binary_op) {
      case BinaryOp::kAdd:
        return float_math
                   ? Value::of_float(lhs.as_float() + rhs.as_float())
                   : Value::of_int(lhs.as_int() + rhs.as_int());
      case BinaryOp::kSub:
        return float_math
                   ? Value::of_float(lhs.as_float() - rhs.as_float())
                   : Value::of_int(lhs.as_int() - rhs.as_int());
      case BinaryOp::kMul:
        return float_math
                   ? Value::of_float(lhs.as_float() * rhs.as_float())
                   : Value::of_int(lhs.as_int() * rhs.as_int());
      case BinaryOp::kDiv:
        if (float_math) {
          return Value::of_float(lhs.as_float() / rhs.as_float());
        }
        if (rhs.as_int() == 0) fail(expr.line, "integer division by zero");
        return Value::of_int(lhs.as_int() / rhs.as_int());
      case BinaryOp::kMod:
        if (rhs.as_int() == 0) fail(expr.line, "modulo by zero");
        return Value::of_int(lhs.as_int() % rhs.as_int());
      case BinaryOp::kEq:
        return Value::of_int(lhs.as_float() == rhs.as_float() ? 1 : 0);
      case BinaryOp::kNe:
        return Value::of_int(lhs.as_float() != rhs.as_float() ? 1 : 0);
      case BinaryOp::kLt:
        return Value::of_int(lhs.as_float() < rhs.as_float() ? 1 : 0);
      case BinaryOp::kLe:
        return Value::of_int(lhs.as_float() <= rhs.as_float() ? 1 : 0);
      case BinaryOp::kGt:
        return Value::of_int(lhs.as_float() > rhs.as_float() ? 1 : 0);
      case BinaryOp::kGe:
        return Value::of_int(lhs.as_float() >= rhs.as_float() ? 1 : 0);
      default:
        fail(expr.line, "unhandled binary operator");
    }
  }

  Value eval_call(const Expr& expr) {
    const std::string& name = expr.name;
    if (name == "get") {
      Value& arr = variable(expr.args[0]->name, expr.line);
      std::vector<int64_t> idx;
      for (size_t i = 1; i < expr.args.size(); ++i) {
        idx.push_back(eval(*expr.args[i]).as_int());
      }
      const double value = element_of(*arr.array, idx, expr.line);
      return is_float_type(arr.array->type())
                 ? Value::of_float(value)
                 : Value::of_int(static_cast<int64_t>(value));
    }
    if (name == "put") {
      Value& arr = variable(expr.args[0]->name, expr.line);
      const double value = eval(*expr.args[1]).as_float();
      std::vector<int64_t> idx;
      for (size_t i = 2; i < expr.args.size(); ++i) {
        idx.push_back(eval(*expr.args[i]).as_int());
      }
      put_element(*arr.array, idx, value, expr.line);
      return Value::of_int(0);
    }
    if (name == "extent") {
      Value& arr = variable(expr.args[0]->name, expr.line);
      const auto dim = static_cast<size_t>(eval(*expr.args[1]).as_int());
      if (dim >= arr.array->extents().rank()) {
        fail(expr.line, "extent dimension out of range");
      }
      return Value::of_int(arr.array->extents().dim(dim));
    }
    if (name == "print") {
      std::ostringstream os;
      for (size_t i = 0; i < expr.args.size(); ++i) {
        if (expr.args[i]->kind == Expr::Kind::kStringLit) {
          os << expr.args[i]->string_value;
          continue;
        }
        const Value value = eval(*expr.args[i]);
        if (i > 0 && expr.args[i - 1]->kind != Expr::Kind::kStringLit) {
          os << " ";
        }
        if (value.kind == Value::Kind::kFloat) {
          os << value.as_float();
        } else if (value.kind == Value::Kind::kArray) {
          os << "{";
          for (int64_t e = 0; e < value.array->element_count(); ++e) {
            if (e > 0) os << ", ";
            if (is_float_type(value.array->type())) {
              os << value.array->get_as_double(e);
            } else {
              os << value.array->get_as_int(e);
            }
          }
          os << "}";
        } else {
          os << value.as_int();
        }
      }
      shared_.printed->append(os.str());
      return Value::of_int(0);
    }
    if (name == "now_ms") {
      return Value::of_float(
          ctx_.timers().elapsed_ms(expr.args[0]->name));
    }
    if (name == "expired") {
      const auto ms = std::chrono::milliseconds(
          eval(*expr.args[1]).as_int());
      return Value::of_int(
          ctx_.timers().expired(expr.args[0]->name, ms) ? 1 : 0);
    }
    if (name == "set_timer") {
      ctx_.timers().set_now(expr.args[0]->name);
      return Value::of_int(0);
    }
    if (name == "continue_age") {
      ctx_.continue_next_age();
      return Value::of_int(0);
    }
    if (name == "sqrt") return Value::of_float(std::sqrt(eval(*expr.args[0]).as_float()));
    if (name == "abs") {
      const Value v = eval(*expr.args[0]);
      return v.kind == Value::Kind::kFloat
                 ? Value::of_float(std::fabs(v.as_float()))
                 : Value::of_int(std::llabs(v.as_int()));
    }
    if (name == "min" || name == "max") {
      const Value a = eval(*expr.args[0]);
      const Value b = eval(*expr.args[1]);
      const bool take_a =
          name == "min" ? a.as_float() <= b.as_float()
                        : a.as_float() >= b.as_float();
      return take_a ? a : b;
    }
    if (name == "int") return Value::of_int(eval(*expr.args[0]).as_int());
    if (name == "float") {
      return Value::of_float(eval(*expr.args[0]).as_float());
    }
    fail(expr.line, "unknown function '" + name + "'");
  }

  const SharedState& shared_;
  const KernelDefAst& kernel_;
  const KernelInfo& info_;
  KernelContext& ctx_;
  std::map<std::string, Value> env_;
};

AgeExpr to_age_expr(const AgeRef& age) {
  return age.kind == AgeRef::Kind::kRelative
             ? AgeExpr::relative(age.offset)
             : AgeExpr::constant(age.offset);
}

Slice to_slice(const FieldAccess& access) {
  if (access.slices.empty()) return Slice::whole();
  Slice slice;
  for (const SliceElem& elem : access.slices) {
    switch (elem.kind) {
      case SliceElem::Kind::kVar: slice.var(elem.name); break;
      case SliceElem::Kind::kConst: slice.at(elem.value); break;
      case SliceElem::Kind::kAll: slice.all(); break;
    }
  }
  return slice;
}

/// Collects store statements; sorted by the slot sema assigned.
void collect_stores(const Block& block,
                    std::vector<const Stmt*>& stores) {
  for (const StmtPtr& stmt : block) {
    if (stmt->kind == Stmt::Kind::kStore) {
      stores.push_back(stmt.get());
    }
    collect_stores(stmt->body, stores);
    collect_stores(stmt->else_body, stores);
    if (stmt->for_init && stmt->for_init->kind == Stmt::Kind::kStore) {
      stores.push_back(stmt->for_init.get());
    }
    if (stmt->for_step && stmt->for_step->kind == Stmt::Kind::kStore) {
      stores.push_back(stmt->for_step.get());
    }
  }
}

}  // namespace

CompiledModule compile_to_program(ModuleAst module) {
  const ModuleInfo info = analyze(module);

  auto shared = std::make_shared<SharedState>();
  shared->printed = std::make_shared<PrintSink>();
  shared->info = info;

  CompiledModule out;
  out.printed = shared->printed;

  ProgramBuilder pb;
  for (const FieldDefAst& field : module.fields) {
    const nd::ElementType type = nd::parse_element_type(field.type_name);
    pb.field(field.name, type, static_cast<size_t>(field.rank),
             field.extents);
    shared->fields.emplace(
        field.name, FieldMeta{type, static_cast<size_t>(field.rank)});
  }

  for (size_t ki = 0; ki < module.kernels.size(); ++ki) {
    const KernelDefAst& kernel = module.kernels[ki];
    KernelBuilder& kb = pb.kernel(kernel.name);
    if (kernel.age_var.empty()) kb.run_once();
    if (kernel.serial) kb.serial();
    for (const std::string& var : kernel.index_vars) kb.index(var);

    for (const size_t si : info.kernels[ki].fetch_statements) {
      const Stmt& stmt = *kernel.body[si];
      kb.fetch(stmt.name, stmt.access.field, to_age_expr(stmt.access.age),
               to_slice(stmt.access));
    }
    std::vector<const Stmt*> stores;
    collect_stores(kernel.body, stores);
    std::sort(stores.begin(), stores.end(),
              [](const Stmt* a, const Stmt* b) { return a->rank < b->rank; });
    for (const Stmt* stmt : stores) {
      kb.store("s" + std::to_string(stmt->rank), stmt->access.field,
               to_age_expr(stmt->access.age), to_slice(stmt->access));
    }

    kb.body([shared, ki](KernelContext& ctx) {
      Interp(*shared, ki, ctx).run();
    });
  }

  // The AST must outlive the lambdas; move it into the shared state last
  // (the builder only borrowed names from it).
  shared->module = std::move(module);

  out.program = pb.build();
  return out;
}

}  // namespace p2g::lang
