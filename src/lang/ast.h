// Abstract syntax tree of the kernel language.
//
// Following the paper's Fig. 5, a kernel definition mixes declarative
// clauses (age/index/local declarations, fetch and store statements) with
// %{ ... %} code blocks. The fetch/store statements are what the runtime's
// dependency analysis consumes; the code manipulates locals and the
// fetched slices.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

namespace p2g::lang {

// --- expressions -----------------------------------------------------------

struct Expr;
using ExprPtr = std::unique_ptr<Expr>;

enum class BinaryOp {
  kAdd, kSub, kMul, kDiv, kMod,
  kEq, kNe, kLt, kLe, kGt, kGe,
  kAnd, kOr,
};

enum class UnaryOp { kNeg, kNot };

struct Expr {
  enum class Kind {
    kIntLit, kFloatLit, kStringLit, kBoolLit,
    kVarRef, kIndex, kUnary, kBinary, kCall,
  };

  Kind kind;
  int line = 0;

  // kIntLit / kBoolLit
  int64_t int_value = 0;
  // kFloatLit
  double float_value = 0.0;
  // kStringLit
  std::string string_value;
  // kVarRef / kIndex (array name) / kCall (callee)
  std::string name;
  // kIndex (indices), kCall (arguments)
  std::vector<ExprPtr> args;
  // kUnary / kBinary
  UnaryOp unary_op = UnaryOp::kNeg;
  BinaryOp binary_op = BinaryOp::kAdd;
  ExprPtr lhs;
  ExprPtr rhs;
};

// --- field access (fetch/store statements) ----------------------------------

/// Age expression inside a field access: `f(a)`, `f(a+1)`, `f(0)`.
struct AgeRef {
  enum class Kind { kRelative, kConst };
  Kind kind = Kind::kRelative;
  std::string var;     ///< the kernel's age variable (kRelative)
  int64_t offset = 0;  ///< offset for kRelative, age for kConst
};

/// One `[...]` dimension of a field access.
struct SliceElem {
  enum class Kind { kVar, kConst, kAll };
  Kind kind = Kind::kVar;
  std::string name;   ///< index-variable name (kVar)
  int64_t value = 0;  ///< kConst
};

struct FieldAccess {
  std::string field;
  AgeRef age;
  std::vector<SliceElem> slices;  ///< empty = whole field
};

// --- statements --------------------------------------------------------------

struct Stmt;
using StmtPtr = std::unique_ptr<Stmt>;
using Block = std::vector<StmtPtr>;

enum class AssignOp { kAssign, kAdd, kSub, kMul, kDiv };

struct Stmt {
  enum class Kind {
    kLocalDecl,  // local int32 v; / local int32[] arr; / int32 v = e;
    kAssign,     // v = e; arr[i] = e; v += e; v++;
    kExpr,       // put(...); print(...);
    kIf,
    kWhile,
    kFor,
    kReturn,
    kFetch,      // fetch v = field(a)[x];
    kStore,      // store field(a)[x] = e;
  };

  Kind kind;
  int line = 0;

  // kLocalDecl
  std::string type_name;
  int rank = 0;  ///< 0 = scalar, 1 = [], 2 = [][]
  // kLocalDecl (name), kAssign (target), kFetch (target variable)
  std::string name;
  // kAssign: optional element indices (empty = scalar variable)
  std::vector<ExprPtr> indices;
  AssignOp assign_op = AssignOp::kAssign;
  // kLocalDecl initializer, kAssign value, kExpr expression, kIf/kWhile
  // condition, kStore value
  ExprPtr expr;
  // kIf / kWhile / kFor bodies
  Block body;
  Block else_body;  // kIf
  // kFor
  StmtPtr for_init;
  StmtPtr for_step;
  // kFetch / kStore
  FieldAccess access;
};

// --- top-level declarations ---------------------------------------------------

struct FieldDefAst {
  std::string type_name;  ///< "int32", "float64", ...
  int rank = 1;
  std::string name;
  /// Declared per-dimension extents (-1 = implicit `[]`), parallel to the
  /// bracket groups: `int32[8][] f;` -> {8, -1}. Declared extents feed
  /// static analysis (P2G-W008, footprint bounds); runtime extents are
  /// still discovered by stores.
  std::vector<int64_t> extents;
  bool aged = true;  ///< the `age` suffix of the paper's field definitions
  int line = 0;
};

struct TimerDefAst {
  std::string name;
  int line = 0;
};

struct KernelDefAst {
  std::string name;
  bool once = false;
  bool serial = false;
  std::string age_var;  ///< empty when `once`
  std::vector<std::string> index_vars;
  /// All clauses in source order: local decls, fetch/store statements and
  /// the statements of %{ %} blocks.
  Block body;
  int line = 0;
};

struct ModuleAst {
  std::vector<FieldDefAst> fields;
  std::vector<TimerDefAst> timers;
  std::vector<KernelDefAst> kernels;
};

}  // namespace p2g::lang
