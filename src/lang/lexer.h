// Lexer for the kernel language. Handles //- and /* */ comments and the
// %{ %} code-block markers of the paper's syntax.
#pragma once

#include <string>
#include <vector>

#include "lang/token.h"

namespace p2g::lang {

/// Tokenizes a whole source string; throws ErrorKind::kParse with
/// line/column on lexical errors. The final token is kEnd.
std::vector<Token> tokenize(const std::string& source);

}  // namespace p2g::lang
