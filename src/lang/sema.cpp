#include "lang/sema.h"

#include <set>

#include "common/error.h"
#include "common/string_util.h"
#include "nd/buffer.h"

namespace p2g::lang {

const std::map<std::string, Builtin>& builtins() {
  static const std::map<std::string, Builtin> map = {
      {"get", {2, -1}},       {"put", {3, -1}},
      {"extent", {2, 2}},     {"print", {0, -1}},
      {"now_ms", {1, 1}},     {"expired", {2, 2}},
      {"set_timer", {1, 1}},  {"continue_age", {0, 0}},
      {"sqrt", {1, 1}},       {"abs", {1, 1}},
      {"min", {2, 2}},        {"max", {2, 2}},
      {"int", {1, 1}},        {"float", {1, 1}},
  };
  return map;
}

namespace {

class Analyzer {
 public:
  explicit Analyzer(ModuleAst& module) : module_(module) {}

  ModuleInfo run() {
    check_fields();
    ModuleInfo info;
    for (KernelDefAst& kernel : module_.kernels) {
      info.kernels.push_back(analyze_kernel(kernel));
    }
    return info;
  }

 private:
  [[noreturn]] void fail(int line, const std::string& message) const {
    throw_error(ErrorKind::kSema,
                format("line %d: %s", line, message.c_str()));
  }

  void check_fields() {
    std::set<std::string> names;
    for (const FieldDefAst& field : module_.fields) {
      if (!names.insert(field.name).second) {
        fail(field.line, "duplicate field '" + field.name + "'");
      }
      nd::parse_element_type(field.type_name);  // throws on bad type
      if (!field.extents.empty() &&
          field.extents.size() != static_cast<size_t>(field.rank)) {
        fail(field.line, "declared extents of field '" + field.name +
                             "' do not match its rank");
      }
      for (const int64_t extent : field.extents) {
        if (extent == 0 || extent < -1) {
          fail(field.line, "declared field extents must be positive");
        }
      }
    }
    names.clear();
    for (const TimerDefAst& timer : module_.timers) {
      if (!names.insert(timer.name).second) {
        fail(timer.line, "duplicate timer '" + timer.name + "'");
      }
    }
    names.clear();
    for (const KernelDefAst& kernel : module_.kernels) {
      if (!names.insert(kernel.name).second) {
        fail(kernel.line, "duplicate kernel '" + kernel.name + "'");
      }
    }
  }

  const FieldDefAst* find_field(const std::string& name) const {
    for (const FieldDefAst& field : module_.fields) {
      if (field.name == name) return &field;
    }
    return nullptr;
  }

  bool is_timer(const std::string& name) const {
    for (const TimerDefAst& timer : module_.timers) {
      if (timer.name == name) return true;
    }
    return false;
  }

  KernelInfo analyze_kernel(KernelDefAst& kernel) {
    kernel_ = &kernel;
    info_ = KernelInfo{};

    if (kernel.once && !kernel.age_var.empty()) {
      fail(kernel.line, "kernel '" + kernel.name +
                            "' cannot be 'once' and have an age variable");
    }
    if (kernel.serial && !kernel.index_vars.empty()) {
      fail(kernel.line, "serial kernel '" + kernel.name +
                            "' cannot declare index variables");
    }
    {
      std::set<std::string> vars(kernel.index_vars.begin(),
                                 kernel.index_vars.end());
      if (vars.size() != kernel.index_vars.size()) {
        fail(kernel.line, "duplicate index variables");
      }
      if (!kernel.age_var.empty() && vars.count(kernel.age_var)) {
        fail(kernel.line, "age variable shadows an index variable");
      }
    }

    // Pass 1: collect top-level fetches and all locals; fetches nested in
    // control flow are rejected (the dependency graph must be static).
    for (size_t i = 0; i < kernel.body.size(); ++i) {
      if (kernel.body[i]->kind == Stmt::Kind::kFetch) {
        info_.fetch_statements.push_back(i);
      }
    }
    collect_locals(kernel.body);

    // Pass 2: walk everything, checking and numbering stores.
    size_t store_slot = 0;
    fetch_slot_ = 0;
    check_block(kernel.body, /*top_level=*/true, store_slot);
    info_.store_count = store_slot;
    return info_;
  }

  void collect_locals(const Block& block) {
    for (const StmtPtr& stmt : block) {
      if (stmt->kind == Stmt::Kind::kLocalDecl) {
        info_.locals[stmt->name] = {stmt->type_name, stmt->rank};
      }
      collect_locals(stmt->body);
      collect_locals(stmt->else_body);
      if (stmt->for_init) collect_locals_single(*stmt->for_init);
    }
  }

  void collect_locals_single(const Stmt& stmt) {
    if (stmt.kind == Stmt::Kind::kLocalDecl) {
      info_.locals[stmt.name] = {stmt.type_name, stmt.rank};
    }
  }

  bool is_variable(const std::string& name) const {
    if (info_.locals.count(name)) return true;
    if (name == kernel_->age_var) return true;
    for (const std::string& var : kernel_->index_vars) {
      if (var == name) return true;
    }
    return false;
  }

  void check_access(const FieldAccess& access, int line,
                    bool is_store) const {
    const FieldDefAst* field = find_field(access.field);
    if (field == nullptr) {
      fail(line, "unknown field '" + access.field + "'");
    }
    if (access.age.kind == AgeRef::Kind::kRelative) {
      if (kernel_->age_var.empty()) {
        fail(line, "kernel '" + kernel_->name +
                       "' has no age variable but uses a relative age");
      }
      if (access.age.var != kernel_->age_var) {
        fail(line, "unknown age variable '" + access.age.var + "'");
      }
    }
    if (!access.slices.empty() &&
        access.slices.size() != static_cast<size_t>(field->rank)) {
      fail(line, format("field '%s' has rank %d but the access has %zu "
                        "slice dimensions",
                        access.field.c_str(), field->rank,
                        access.slices.size()));
    }
    for (const SliceElem& elem : access.slices) {
      if (elem.kind != SliceElem::Kind::kVar) continue;
      bool found = false;
      for (const std::string& var : kernel_->index_vars) {
        if (var == elem.name) found = true;
      }
      if (!found) {
        fail(line, "slice index '" + elem.name +
                       "' is not a declared index variable");
      }
    }
    (void)is_store;
  }

  void check_expr(const Expr& expr) const {
    switch (expr.kind) {
      case Expr::Kind::kIntLit:
      case Expr::Kind::kFloatLit:
      case Expr::Kind::kStringLit:
      case Expr::Kind::kBoolLit:
        return;
      case Expr::Kind::kVarRef:
        if (!is_variable(expr.name)) {
          fail(expr.line, "unknown variable '" + expr.name + "'");
        }
        return;
      case Expr::Kind::kIndex:
        if (!info_.locals.count(expr.name)) {
          fail(expr.line,
               "unknown array variable '" + expr.name + "'");
        }
        for (const ExprPtr& arg : expr.args) check_expr(*arg);
        return;
      case Expr::Kind::kUnary:
        check_expr(*expr.lhs);
        return;
      case Expr::Kind::kBinary:
        check_expr(*expr.lhs);
        check_expr(*expr.rhs);
        return;
      case Expr::Kind::kCall: {
        const auto it = builtins().find(expr.name);
        if (it == builtins().end()) {
          fail(expr.line, "unknown function '" + expr.name + "'");
        }
        const int argc = static_cast<int>(expr.args.size());
        if (argc < it->second.min_args ||
            (it->second.max_args >= 0 && argc > it->second.max_args)) {
          fail(expr.line,
               "wrong number of arguments to '" + expr.name + "'");
        }
        // Timer builtins name the timer with their first argument.
        if (expr.name == "now_ms" || expr.name == "expired" ||
            expr.name == "set_timer") {
          const Expr& timer = *expr.args[0];
          if (timer.kind != Expr::Kind::kVarRef || !is_timer(timer.name)) {
            fail(expr.line, "'" + expr.name +
                                "' expects a declared timer as its first "
                                "argument");
          }
          // Remaining args are ordinary expressions.
          for (size_t i = 1; i < expr.args.size(); ++i) {
            check_expr(*expr.args[i]);
          }
          return;
        }
        // get/put/extent take an array variable first.
        if (expr.name == "get" || expr.name == "put" ||
            expr.name == "extent") {
          const Expr& arr = *expr.args[0];
          if (arr.kind != Expr::Kind::kVarRef ||
              !info_.locals.count(arr.name)) {
            fail(expr.line, "'" + expr.name +
                                "' expects a local array as its first "
                                "argument");
          }
          for (size_t i = 1; i < expr.args.size(); ++i) {
            check_expr(*expr.args[i]);
          }
          return;
        }
        for (const ExprPtr& arg : expr.args) check_expr(*arg);
        return;
      }
    }
  }

  /// Records the normalized form of a fetch/store statement.
  void record_access(const Stmt& stmt, bool is_fetch, size_t statement) {
    NormalizedAccess a;
    a.is_fetch = is_fetch;
    a.statement = statement;
    a.field = stmt.access.field;
    a.age_is_const = stmt.access.age.kind == AgeRef::Kind::kConst;
    a.age = stmt.access.age.offset;
    for (const SliceElem& elem : stmt.access.slices) {
      a.slice += '[';
      switch (elem.kind) {
        case SliceElem::Kind::kVar: a.slice += elem.name; break;
        case SliceElem::Kind::kConst:
          a.slice += std::to_string(elem.value);
          break;
        case SliceElem::Kind::kAll: a.slice += '*'; break;
      }
      a.slice += ']';
    }
    a.line = stmt.line;
    info_.accesses.push_back(std::move(a));
  }

  void check_block(Block& block, bool top_level, size_t& store_slot) {
    for (StmtPtr& stmt : block) {
      switch (stmt->kind) {
        case Stmt::Kind::kLocalDecl:
          if (stmt->expr) check_expr(*stmt->expr);
          break;
        case Stmt::Kind::kAssign:
          if (!is_variable(stmt->name)) {
            fail(stmt->line,
                 "assignment to unknown variable '" + stmt->name + "'");
          }
          for (const ExprPtr& index : stmt->indices) check_expr(*index);
          check_expr(*stmt->expr);
          break;
        case Stmt::Kind::kExpr:
          check_expr(*stmt->expr);
          break;
        case Stmt::Kind::kIf:
          check_expr(*stmt->expr);
          check_block(stmt->body, false, store_slot);
          check_block(stmt->else_body, false, store_slot);
          break;
        case Stmt::Kind::kWhile:
          check_expr(*stmt->expr);
          check_block(stmt->body, false, store_slot);
          break;
        case Stmt::Kind::kFor: {
          if (stmt->for_init) {
            Block init;
            init.push_back(std::move(stmt->for_init));
            check_block(init, false, store_slot);
            stmt->for_init = std::move(init[0]);
          }
          if (stmt->expr) check_expr(*stmt->expr);
          if (stmt->for_step) {
            Block step;
            step.push_back(std::move(stmt->for_step));
            check_block(step, false, store_slot);
            stmt->for_step = std::move(step[0]);
          }
          check_block(stmt->body, false, store_slot);
          break;
        }
        case Stmt::Kind::kReturn:
          break;
        case Stmt::Kind::kFetch: {
          if (!top_level) {
            fail(stmt->line,
                 "fetch statements must be unconditional (top level of "
                 "the kernel): the dependency graph is static");
          }
          check_access(stmt->access, stmt->line, false);
          if (!info_.locals.count(stmt->name)) {
            fail(stmt->line, "fetch target '" + stmt->name +
                                 "' is not a declared local");
          }
          record_access(*stmt, /*is_fetch=*/true, fetch_slot_++);
          break;
        }
        case Stmt::Kind::kStore: {
          check_access(stmt->access, stmt->line, true);
          check_expr(*stmt->expr);
          // Whole-field (and all()-containing) stores need an array local.
          bool has_all = stmt->access.slices.empty();
          for (const SliceElem& elem : stmt->access.slices) {
            if (elem.kind == SliceElem::Kind::kAll) has_all = true;
          }
          if (has_all) {
            if (stmt->expr->kind != Expr::Kind::kVarRef ||
                !info_.locals.count(stmt->expr->name) ||
                info_.locals.at(stmt->expr->name).second == 0) {
              fail(stmt->line,
                   "whole-field stores need a local array value");
            }
          }
          // Annotate the slot (rank is unused for store statements).
          stmt->rank = static_cast<int>(store_slot);
          record_access(*stmt, /*is_fetch=*/false, store_slot++);
          break;
        }
      }
    }
  }

  ModuleAst& module_;
  KernelDefAst* kernel_ = nullptr;
  KernelInfo info_;
  size_t fetch_slot_ = 0;
};

}  // namespace

ModuleInfo analyze(ModuleAst& module) { return Analyzer(module).run(); }

}  // namespace p2g::lang
