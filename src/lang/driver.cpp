#include "lang/driver.h"

#include <cstdio>

#include "common/error.h"
#include "lang/parser.h"

namespace p2g::lang {

std::string read_file(const std::string& path) {
  FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    throw_error(ErrorKind::kIo, "cannot open '" + path + "'");
  }
  std::fseek(f, 0, SEEK_END);
  const long size = std::ftell(f);
  std::fseek(f, 0, SEEK_SET);
  std::string source(static_cast<size_t>(size), '\0');
  const size_t got = std::fread(source.data(), 1, source.size(), f);
  std::fclose(f);
  if (got != source.size()) {
    throw_error(ErrorKind::kIo, "short read on '" + path + "'");
  }
  return source;
}

CompiledModule compile_source(const std::string& source) {
  return compile_to_program(parse_module(source));
}

CompiledModule compile_file(const std::string& path) {
  return compile_source(read_file(path));
}

}  // namespace p2g::lang
