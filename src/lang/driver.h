// Front-end driver: .p2g source -> runnable Program (interpreter backend)
// or generated C++ (codegen backend, see codegen.h).
#pragma once

#include <string>

#include "lang/ast.h"
#include "lang/interp.h"

namespace p2g::lang {

/// Reads a file into a string; throws kIo.
std::string read_file(const std::string& path);

/// Parse + analyze + build with interpreted kernel bodies.
CompiledModule compile_source(const std::string& source);
CompiledModule compile_file(const std::string& path);

}  // namespace p2g::lang
