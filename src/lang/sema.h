// Semantic analysis of a parsed kernel-language module.
//
// Validates field/kernel references, slice ranks, age expressions, index
// variables, local declarations, fetch placement (fetch statements must be
// unconditional — they define the static dependency graph) and builtin
// calls; annotates every store statement with its store-declaration slot.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "lang/ast.h"

namespace p2g::lang {

/// One fetch/store statement in normalized form: age expressions reduced
/// to (kind, offset) and slices to a canonical `[x][3][*]` rendering.
/// Consumed by the dependence pass tooling (p2gdep) and tests that want
/// the front end's view without compiling to a Program.
struct NormalizedAccess {
  bool is_fetch = true;
  /// Fetch index or store slot, in the same numbering the compiled
  /// Program uses.
  size_t statement = 0;
  std::string field;
  bool age_is_const = false;
  int64_t age = 0;     ///< constant age, or offset relative to the age var
  std::string slice;   ///< "" = whole field
  int line = 0;
};

/// Per-kernel results of analysis.
struct KernelInfo {
  /// Indices into the kernel body of the top-level fetch statements, in
  /// order; the slot name of fetch i is its target variable.
  std::vector<size_t> fetch_statements;
  /// Number of store statements (slots "s0".."sN-1", assigned in
  /// Stmt::int-annotated order via store_slots below).
  size_t store_count = 0;
  /// Every fetch/store statement in normalized form, in source order.
  std::vector<NormalizedAccess> accesses;
  /// Locals declared anywhere in the kernel: name -> (type name, rank).
  std::map<std::string, std::pair<std::string, int>> locals;
};

struct ModuleInfo {
  std::vector<KernelInfo> kernels;  ///< parallel to ModuleAst::kernels
};

/// Validates the module (throws ErrorKind::kSema) and annotates store
/// statements: after this call every kStore Stmt's `rank` field holds its
/// store slot index (reusing the otherwise unused field for stores).
ModuleInfo analyze(ModuleAst& module);

/// Known builtin functions with their arity ranges (min, max; -1 = any).
struct Builtin {
  int min_args;
  int max_args;
};
const std::map<std::string, Builtin>& builtins();

}  // namespace p2g::lang
