// Semantic analysis of a parsed kernel-language module.
//
// Validates field/kernel references, slice ranks, age expressions, index
// variables, local declarations, fetch placement (fetch statements must be
// unconditional — they define the static dependency graph) and builtin
// calls; annotates every store statement with its store-declaration slot.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "lang/ast.h"

namespace p2g::lang {

/// Per-kernel results of analysis.
struct KernelInfo {
  /// Indices into the kernel body of the top-level fetch statements, in
  /// order; the slot name of fetch i is its target variable.
  std::vector<size_t> fetch_statements;
  /// Number of store statements (slots "s0".."sN-1", assigned in
  /// Stmt::int-annotated order via store_slots below).
  size_t store_count = 0;
  /// Locals declared anywhere in the kernel: name -> (type name, rank).
  std::map<std::string, std::pair<std::string, int>> locals;
};

struct ModuleInfo {
  std::vector<KernelInfo> kernels;  ///< parallel to ModuleAst::kernels
};

/// Validates the module (throws ErrorKind::kSema) and annotates store
/// statements: after this call every kStore Stmt's `rank` field holds its
/// store slot index (reusing the otherwise unused field for stores).
ModuleInfo analyze(ModuleAst& module);

/// Known builtin functions with their arity ranges (min, max; -1 = any).
struct Builtin {
  int min_args;
  int max_args;
};
const std::map<std::string, Builtin>& builtins();

}  // namespace p2g::lang
