#include "analysis/lang_lint.h"

#include <map>
#include <string>
#include <vector>

#include "lang/driver.h"
#include "lang/interp.h"
#include "lang/parser.h"
#include "lang/sema.h"

namespace p2g::analysis {
namespace {

/// Source lines of one kernel's declarations, indexed the same way the
/// built Program indexes them: fetch decl i <-> i-th top-level fetch
/// statement, store decl s <-> the store statement sema annotated with
/// slot s (Stmt::rank).
struct KernelLines {
  int line = 0;
  std::vector<int> fetch_lines;
  std::vector<int> store_lines;
};

void collect_store_lines(const lang::Block& block,
                         std::vector<int>& store_lines) {
  for (const lang::StmtPtr& stmt : block) {
    if (stmt->kind == lang::Stmt::Kind::kStore) {
      const auto slot = static_cast<size_t>(stmt->rank);
      if (slot >= store_lines.size()) store_lines.resize(slot + 1, 0);
      store_lines[slot] = stmt->line;
    }
    collect_store_lines(stmt->body, store_lines);
    collect_store_lines(stmt->else_body, store_lines);
  }
}

struct LineTables {
  std::map<std::string, int> fields;
  std::map<std::string, KernelLines> kernels;
};

/// `module` must already be analyzed (store slots annotated).
LineTables build_line_tables(const lang::ModuleAst& module,
                             const lang::ModuleInfo& info) {
  LineTables tables;
  for (const lang::FieldDefAst& f : module.fields) {
    tables.fields[f.name] = f.line;
  }
  for (size_t ki = 0; ki < module.kernels.size(); ++ki) {
    const lang::KernelDefAst& k = module.kernels[ki];
    KernelLines lines;
    lines.line = k.line;
    for (size_t fetch_stmt : info.kernels[ki].fetch_statements) {
      lines.fetch_lines.push_back(k.body[fetch_stmt]->line);
    }
    collect_store_lines(k.body, lines.store_lines);
    tables.kernels[k.name] = std::move(lines);
  }
  return tables;
}

void annotate(Anchor& anchor, const LineTables& tables) {
  switch (anchor.kind) {
    case Anchor::Kind::kNone:
      return;
    case Anchor::Kind::kField: {
      const auto it = tables.fields.find(anchor.name);
      if (it != tables.fields.end()) anchor.line = it->second;
      return;
    }
    case Anchor::Kind::kSite:
      return;  // already carries its own site/line description
    case Anchor::Kind::kKernel:
    case Anchor::Kind::kFetch:
    case Anchor::Kind::kStore: {
      const auto it = tables.kernels.find(anchor.name);
      if (it == tables.kernels.end()) return;
      if (anchor.kind == Anchor::Kind::kKernel) {
        anchor.line = it->second.line;
      } else {
        const std::vector<int>& lines = anchor.kind == Anchor::Kind::kFetch
                                            ? it->second.fetch_lines
                                            : it->second.store_lines;
        if (anchor.statement < lines.size()) {
          anchor.line = lines[anchor.statement];
        }
      }
      return;
    }
  }
}

}  // namespace

LintReport lint_source(const std::string& source, const LintOptions& options) {
  lang::ModuleAst module = lang::parse_module(source);
  const lang::ModuleInfo info = lang::analyze(module);
  const LineTables tables = build_line_tables(module, info);

  // compile_to_program re-runs analyze internally; the annotation it makes
  // (store slots) is deterministic, so the tables above stay valid.
  const lang::CompiledModule compiled =
      lang::compile_to_program(std::move(module));
  LintReport report = lint(compiled.program, options);
  for (Diagnostic& d : report.diagnostics) {
    annotate(d.primary, tables);
    annotate(d.secondary, tables);
  }
  return report;
}

LintReport lint_file(const std::string& path, const LintOptions& options) {
  return lint_source(lang::read_file(path), options);
}

DependenceReport dep_source(const std::string& source) {
  lang::ModuleAst module = lang::parse_module(source);
  const lang::ModuleInfo info = lang::analyze(module);
  const LineTables tables = build_line_tables(module, info);

  const lang::CompiledModule compiled =
      lang::compile_to_program(std::move(module));
  DependenceReport report = analyze_dependences(compiled.program);
  for (Diagnostic& d : report.diagnostics.diagnostics) {
    annotate(d.primary, tables);
    annotate(d.secondary, tables);
  }
  return report;
}

DependenceReport dep_file(const std::string& path) {
  return dep_source(lang::read_file(path));
}

}  // namespace p2g::analysis
