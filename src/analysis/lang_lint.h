// p2g-lint front end for kernel-language source: parses and compiles a
// .p2g module, runs the static checks of lint.h over the resulting
// Program, and annotates every diagnostic anchor with the source line of
// the fetch/store statement (or kernel/field definition) it points at.
#pragma once

#include <string>

#include "analysis/dependence.h"
#include "analysis/lint.h"

namespace p2g::analysis {

/// Lints kernel-language source. Parse and sema errors surface as the
/// usual kParse/kSema exceptions — only a well-formed module reaches the
/// lint passes.
LintReport lint_source(const std::string& source,
                       const LintOptions& options = {});

/// Reads and lints a .p2g file; throws kIo when unreadable.
LintReport lint_file(const std::string& path, const LintOptions& options = {});

/// Runs the symbolic dependence pass (dependence.h) over kernel-language
/// source, annotating diagnostic anchors with source lines.
DependenceReport dep_source(const std::string& source);

/// Same, reading a .p2g file; throws kIo when unreadable.
DependenceReport dep_file(const std::string& path);

}  // namespace p2g::analysis
