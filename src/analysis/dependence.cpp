#include "analysis/dependence.h"

#include <algorithm>
#include <limits>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "analysis/lint.h"
#include "common/error.h"
#include "common/string_util.h"
#include "core/dependency.h"
#include "nd/buffer.h"

namespace p2g::analysis {
namespace {

constexpr Age kInfeasible = DependencyAnalyzer::kInfeasible;

// Concrete-age reasoning shared with lint.cpp (duplicated on purpose: both
// are implementation details of their passes, and the dozen lines beat a
// shared-internals header).
struct AgeSet {
  bool feasible = false;
  Age lo = 0;
  bool unbounded = false;
};

AgeSet age_set_of(const AgeExpr& age, Age kernel_first) {
  AgeSet s;
  if (age.kind == AgeExpr::Kind::kConst) {
    s.feasible = age.value >= 0;
    s.lo = age.value;
    return s;
  }
  if (kernel_first >= kInfeasible) return s;
  s.feasible = true;
  s.lo = std::max<Age>(kernel_first + age.value, 0);
  s.unbounded = true;
  return s;
}

bool age_sets_intersect(const AgeSet& a, const AgeSet& b) {
  if (!a.feasible || !b.feasible) return false;
  const Age lo = std::max(a.lo, b.lo);
  const Age hi_a = a.unbounded ? std::numeric_limits<Age>::max() : a.lo;
  const Age hi_b = b.unbounded ? std::numeric_limits<Age>::max() : b.lo;
  return lo <= std::min(hi_a, hi_b);
}

std::string age_to_string(const AgeExpr& age) {
  if (age.kind == AgeExpr::Kind::kConst) return std::to_string(age.value);
  if (age.value == 0) return "a";
  if (age.value > 0) return "a+" + std::to_string(age.value);
  return "a" + std::to_string(age.value);
}

std::string slice_to_string(const KernelDef& def, const nd::SliceSpec& slice) {
  if (slice.is_whole()) return "";
  std::string out;
  for (const nd::SliceDim& d : slice.dims()) {
    out += '[';
    switch (d.kind) {
      case nd::SliceDim::Kind::kAll:
        out += '*';
        break;
      case nd::SliceDim::Kind::kVar:
        out += def.index_vars[static_cast<size_t>(d.var)];
        break;
      case nd::SliceDim::Kind::kConst:
        out += std::to_string(d.value);
        break;
    }
    out += ']';
  }
  return out;
}

std::string access_to_string(const Program& program, const KernelDef& def,
                             bool is_fetch, size_t statement) {
  const FieldId field = is_fetch ? def.fetches[statement].field
                                 : def.stores[statement].field;
  const AgeExpr& age =
      is_fetch ? def.fetches[statement].age : def.stores[statement].age;
  const nd::SliceSpec& slice =
      is_fetch ? def.fetches[statement].slice : def.stores[statement].slice;
  return std::string(is_fetch ? "fetch " : "store ") +
         program.field(field).name + "(" + age_to_string(age) + ")" +
         slice_to_string(def, slice);
}

/// Symbolic footprint of a slice over its field: constants are points,
/// variable and all() dimensions cover [0, declared extent) when the field
/// declares one and [0, |field.dim|) otherwise.
Footprint footprint_of(const Program& program, FieldId field,
                       const nd::SliceSpec& slice) {
  if (slice.is_whole()) return Footprint::whole_field(field);
  Footprint fp;
  fp.field = field;
  const FieldDecl& fd = program.field(field);
  for (size_t d = 0; d < slice.rank(); ++d) {
    const nd::SliceDim& sd = slice.dims()[d];
    if (sd.kind == nd::SliceDim::Kind::kConst) {
      fp.dims.push_back(DimFootprint::point(sd.value));
      continue;
    }
    const int64_t declared = fd.declared_extent(d);
    fp.dims.push_back(declared >= 0
                          ? DimFootprint::range(0, SymBound::finite(declared))
                          : DimFootprint::full(field, d));
  }
  return fp;
}

AccessPattern classify(const KernelDef& def, bool is_fetch,
                       const FieldId field, const AgeExpr& age,
                       const nd::SliceSpec& slice, int64_t* stencil_radius) {
  if (slice.is_whole()) {
    if (!is_fetch) return AccessPattern::kBroadcast;
    return age.kind == AgeExpr::Kind::kRelative ? AccessPattern::kReduction
                                                : AccessPattern::kBroadcast;
  }
  if (slice.is_elementwise()) {
    if (is_fetch && age.kind == AgeExpr::Kind::kRelative) {
      // Temporal stencil: the kernel reads the same field elementwise at
      // several relative age offsets (e.g. smoothing over a, a-1, a-2).
      int64_t min_off = age.value, max_off = age.value;
      size_t offsets = 0;
      for (const FetchDecl& f : def.fetches) {
        if (f.field != field || f.age.kind != AgeExpr::Kind::kRelative ||
            !f.slice.is_elementwise() || f.slice.is_whole()) {
          continue;
        }
        min_off = std::min(min_off, f.age.value);
        max_off = std::max(max_off, f.age.value);
        ++offsets;
      }
      if (offsets > 1 && max_off > min_off) {
        *stencil_radius = max_off - min_off;
        return AccessPattern::kStencil;
      }
    }
    return AccessPattern::kPointwise;
  }
  // Mixed variable/constant dimensions with all() tails: a row/column/block
  // stream (one sub-slab per instance).
  bool has_addressed = false;
  for (const nd::SliceDim& d : slice.dims()) {
    if (d.kind != nd::SliceDim::Kind::kAll) has_addressed = true;
  }
  return has_addressed ? AccessPattern::kStream : AccessPattern::kReduction;
}

/// Per-dimension element distance between a store and a fetch slice:
/// "0" for aligned variable dims, a signed constant delta for constant
/// pairs, "*" when a dimension's relation is unknown. Empty when either
/// side addresses the whole field.
std::vector<std::string> elem_distances(const nd::SliceSpec& store,
                                        const nd::SliceSpec& fetch) {
  std::vector<std::string> out;
  if (store.is_whole() || fetch.is_whole() ||
      store.rank() != fetch.rank()) {
    return out;
  }
  for (size_t d = 0; d < store.rank(); ++d) {
    const nd::SliceDim& s = store.dims()[d];
    const nd::SliceDim& f = fetch.dims()[d];
    if (s.kind == nd::SliceDim::Kind::kConst &&
        f.kind == nd::SliceDim::Kind::kConst) {
      out.push_back(std::to_string(s.value - f.value));
    } else if (s.kind == nd::SliceDim::Kind::kVar &&
               f.kind == nd::SliceDim::Kind::kVar) {
      out.push_back("0");
    } else {
      out.push_back("*");
    }
  }
  return out;
}

/// Static mirror of Runtime::fuse's legality checks for fusing `down` into
/// the pipeline after `up` over `field`.
struct FusionVerdict {
  bool legal = false;
  std::string blocker;
  int64_t age_delta = 0;
  bool elidable = false;
};

FusionVerdict fusion_verdict(const Program& program, const KernelDef& up,
                             const KernelDef& down, FieldId field) {
  FusionVerdict v;
  if (down.fetches.size() != 1) {
    v.blocker = "consumer has " + std::to_string(down.fetches.size()) +
                " fetch statements (fusion requires exactly one)";
    return v;
  }
  const FetchDecl& df = down.fetches[0];
  if (df.field != field) {
    v.blocker = "consumer's only fetch reads field '" +
                program.field(df.field).name + "', not '" +
                program.field(field).name + "'";
    return v;
  }
  if (df.slice.is_whole()) {
    v.blocker = "consumer fetch is whole-field, not elementwise";
    return v;
  }
  if (!df.slice.is_elementwise()) {
    v.blocker = "consumer fetch has all() dimensions";
    return v;
  }
  if (df.age.kind != AgeExpr::Kind::kRelative) {
    v.blocker = "consumer fetch pins a constant age";
    return v;
  }
  for (size_t var = 0; var < down.index_vars.size(); ++var) {
    if (!df.slice.dim_of_var(static_cast<int>(var)).has_value()) {
      v.blocker = "consumer index variable '" + down.index_vars[var] +
                  "' is not covered by the fetch";
      return v;
    }
  }
  const StoreDecl* matched = nullptr;
  for (const StoreDecl& s : up.stores) {
    if (s.field != field) continue;
    if (!s.slice.is_elementwise() ||
        s.age.kind != AgeExpr::Kind::kRelative) {
      continue;
    }
    if (s.slice.dims().size() != df.slice.dims().size()) continue;
    bool compatible = true;
    for (size_t i = 0; i < s.slice.dims().size() && compatible; ++i) {
      const nd::SliceDim& a = s.slice.dims()[i];
      const nd::SliceDim& b = df.slice.dims()[i];
      if (a.kind != b.kind) compatible = false;
      if (a.kind == nd::SliceDim::Kind::kConst && a.value != b.value) {
        compatible = false;
      }
    }
    if (compatible) {
      matched = &s;
      break;
    }
  }
  if (matched == nullptr) {
    v.blocker = "producer has no elementwise relative-age store matching "
                "the fetch slice";
    return v;
  }
  v.legal = true;
  v.age_delta = matched->age.value - df.age.value;
  const auto& consumers = program.consumers_of(field);
  v.elidable = consumers.size() == 1 && consumers[0].kernel == down.id;
  return v;
}

std::vector<DependenceEdge> build_edges(const Program& program,
                                        const std::vector<Age>& first) {
  std::vector<DependenceEdge> edges;
  for (const FieldDecl& field : program.fields()) {
    for (const Program::Use& p : program.producers_of(field.id)) {
      const KernelDef& up = program.kernel(p.kernel);
      const StoreDecl& s = up.stores[p.statement];
      const AgeSet store_ages =
          age_set_of(s.age, first[static_cast<size_t>(p.kernel)]);
      const Footprint store_fp = footprint_of(program, field.id, s.slice);
      for (const Program::Use& c : program.consumers_of(field.id)) {
        const KernelDef& down = program.kernel(c.kernel);
        const FetchDecl& f = down.fetches[c.statement];
        const AgeSet fetch_ages =
            age_set_of(f.age, first[static_cast<size_t>(c.kernel)]);
        if (!age_sets_intersect(store_ages, fetch_ages)) continue;
        if (!may_overlap(store_fp,
                         footprint_of(program, field.id, f.slice))) {
          continue;
        }
        DependenceEdge e;
        e.field = field.id;
        e.field_name = field.name;
        e.producer = up.id;
        e.producer_name = up.name;
        e.store = p.statement;
        e.consumer = down.id;
        e.consumer_name = down.name;
        e.fetch = c.statement;
        if (s.age.kind == AgeExpr::Kind::kRelative &&
            f.age.kind == AgeExpr::Kind::kRelative) {
          e.age_distance = s.age.value - f.age.value;
        } else if (s.age.kind == AgeExpr::Kind::kConst &&
                   f.age.kind == AgeExpr::Kind::kConst) {
          e.age_distance = 0;  // intersecting constant ages are equal
        }
        e.elem_distance = elem_distances(s.slice, f.slice);
        const FusionVerdict v = fusion_verdict(program, up, down, field.id);
        e.fusible = v.legal;
        e.blocker = v.blocker;
        edges.push_back(std::move(e));
      }
    }
  }
  return edges;
}

// --- P2G-W010: fusion-legality report (kInfo) ------------------------------

void report_fusion_legality(const Program& program,
                            const std::vector<DependenceEdge>& edges,
                            LintReport& report) {
  std::set<std::pair<std::pair<KernelId, KernelId>, FieldId>> seen;
  for (const DependenceEdge& e : edges) {
    if (!seen.insert({{e.producer, e.consumer}, e.field}).second) continue;
    const KernelDef& up = program.kernel(e.producer);
    const KernelDef& down = program.kernel(e.consumer);
    const FusionVerdict v = fusion_verdict(program, up, down, e.field);
    Diagnostic d;
    d.code = kFusionLegality;
    d.severity = Severity::kInfo;
    d.primary = Anchor::fetch(down.name, e.fetch);
    d.secondary = Anchor::store(up.name, e.store);
    if (v.legal) {
      d.message = "fusing '" + down.name + "' into the pipeline after '" +
                  up.name + "' over field '" + e.field_name +
                  "' is legal (age delta " + std::to_string(v.age_delta) +
                  "; intermediate store " +
                  (v.elidable ? "elidable" : "not elidable: field has other "
                                            "consumers") +
                  ")";
    } else {
      d.message = "fusing '" + down.name + "' after '" + up.name +
                  "' over field '" + e.field_name + "' is not legal: " +
                  v.blocker;
    }
    report.diagnostics.push_back(std::move(d));
  }
}

// --- P2G-W011: per-age footprint bounds (kInfo) ----------------------------

std::vector<FieldBound> field_bounds(const Program& program) {
  std::vector<FieldBound> bounds;
  for (const FieldDecl& field : program.fields()) {
    const auto& producers = program.producers_of(field.id);
    if (producers.empty()) continue;
    FieldBound b;
    b.field = field.id;
    b.field_name = field.name;
    if (field.rank == 0) {
      b.elements = "1";
      b.bytes = static_cast<int64_t>(nd::element_size(field.type));
      bounds.push_back(std::move(b));
      continue;
    }
    int64_t product = 1;
    bool finite = true;
    std::string expr;
    for (size_t d = 0; d < field.rank; ++d) {
      // Union upper bound of the dimension across producers. The field's
      // own runtime extent |field.d| is by construction the supremum of
      // everything written, so any symbolic contribution collapses to it.
      int64_t max_finite = 0;
      bool dim_finite = true;
      for (const Program::Use& p : producers) {
        const KernelDef& def = program.kernel(p.kernel);
        const Footprint fp =
            footprint_of(program, field.id, def.stores[p.statement].slice);
        if (fp.whole) {
          const int64_t declared = field.declared_extent(d);
          if (declared >= 0) {
            max_finite = std::max(max_finite, declared);
          } else {
            dim_finite = false;
          }
          continue;
        }
        const SymBound& hi = fp.dims[d].hi;
        if (hi.is_finite()) {
          max_finite = std::max(max_finite, hi.value);
        } else {
          dim_finite = false;
        }
      }
      if (!expr.empty()) expr += "*";
      if (dim_finite) {
        expr += std::to_string(max_finite);
        product *= max_finite;
      } else {
        expr += "|" + field.name + "." + std::to_string(d) + "|";
        finite = false;
      }
    }
    b.elements = expr;
    if (finite) {
      b.bytes = product * static_cast<int64_t>(nd::element_size(field.type));
    }
    bounds.push_back(std::move(b));
  }
  return bounds;
}

void report_field_bounds(const std::vector<FieldBound>& bounds,
                         LintReport& report) {
  for (const FieldBound& b : bounds) {
    Diagnostic d;
    d.code = kFootprintBound;
    d.severity = Severity::kInfo;
    d.primary = Anchor::field(b.field_name);
    d.message = "per-age footprint of field '" + b.field_name +
                "' is at most " + b.elements + " element(s)";
    if (b.bytes.has_value()) {
      d.message += " = " + std::to_string(*b.bytes) + " bytes";
    }
    report.diagnostics.push_back(std::move(d));
  }
}

// --- independence certificates ---------------------------------------------

bool has_error_at_fetch(const LintReport& report, const std::string& kernel,
                        size_t statement) {
  for (const Diagnostic& d : report.diagnostics) {
    if (d.severity == Severity::kError &&
        d.primary.kind == Anchor::Kind::kFetch &&
        d.primary.name == kernel && d.primary.statement == statement) {
      return true;
    }
  }
  return false;
}

std::vector<IndependenceCertificate> derive_certificates(
    const Program& program, const std::vector<Age>& first,
    const LintReport& diagnostics) {
  std::vector<IndependenceCertificate> certs;
  // A program that fails validation gets no fast path: the proofs below
  // assume the write-once and coverage invariants lint enforces.
  if (diagnostics.has_errors()) return certs;
  for (const KernelDef& def : program.kernels()) {
    if (first[static_cast<size_t>(def.id)] >= kInfeasible) continue;
    for (size_t fi = 0; fi < def.fetches.size(); ++fi) {
      const FetchDecl& f = def.fetches[fi];
      if (has_error_at_fetch(diagnostics, def.name, fi)) continue;
      const std::string& field_name = program.field(f.field).name;
      if (!f.slice.is_whole() && f.slice.is_elementwise()) {
        IndependenceCertificate c;
        c.kind = IndependenceCertificate::Kind::kPointwise;
        c.field = f.field;
        c.consumer = def.id;
        c.fetch = fi;
        c.reason = "fetch slice " +
                   slice_to_string(def, f.slice) + " of field '" +
                   field_name + "' is elementwise: every candidate a " +
                   "committed region admits reads only elements inside "
                   "that region";
        certs.push_back(std::move(c));
        continue;
      }
      const auto& producers = program.producers_of(f.field);
      if (producers.size() != 1) continue;
      const KernelDef& up = program.kernel(producers[0].kernel);
      const StoreDecl& s = up.stores[producers[0].statement];
      if (!s.slice.is_whole() || !up.index_vars.empty()) continue;
      IndependenceCertificate c;
      c.kind = IndependenceCertificate::Kind::kWholeCover;
      c.field = f.field;
      c.consumer = def.id;
      c.fetch = fi;
      c.reason = "field '" + field_name +
                 "' has a single producer statement ('" + up.name +
                 "' store #" + std::to_string(producers[0].statement) +
                 "), a whole-field store: one store event covers the "
                 "age's entire content";
      certs.push_back(std::move(c));
    }
  }
  return certs;
}

}  // namespace

std::string_view to_string(AccessPattern pattern) {
  switch (pattern) {
    case AccessPattern::kPointwise: return "pointwise";
    case AccessPattern::kStencil: return "stencil";
    case AccessPattern::kStream: return "stream";
    case AccessPattern::kReduction: return "reduction";
    case AccessPattern::kBroadcast: return "broadcast";
    case AccessPattern::kOpaque: return "opaque";
  }
  return "opaque";
}

// --- P2G-W008 ---------------------------------------------------------------

void check_oob_slices(const Program& program, LintReport& report) {
  const auto check_slice = [&](const KernelDef& def, bool is_fetch,
                               size_t statement, FieldId field,
                               const nd::SliceSpec& slice) {
    if (slice.is_whole()) return;
    const FieldDecl& fd = program.field(field);
    for (size_t dim = 0; dim < slice.rank(); ++dim) {
      const nd::SliceDim& d = slice.dims()[dim];
      if (d.kind != nd::SliceDim::Kind::kConst || d.value < 0) continue;
      const int64_t declared = fd.declared_extent(dim);
      if (declared < 0 || d.value < declared) continue;
      Diagnostic diag;
      diag.code = kOutOfBoundsSlice;
      diag.severity = Severity::kError;
      diag.primary = is_fetch ? Anchor::fetch(def.name, statement)
                              : Anchor::store(def.name, statement);
      diag.secondary = Anchor::field(fd.name);
      diag.message = access_to_string(program, def, is_fetch, statement) +
                     (is_fetch ? " reads" : " writes") +
                     " constant index " + std::to_string(d.value) +
                     " in dimension " + std::to_string(dim) +
                     ", but field '" + fd.name + "' declares extent " +
                     std::to_string(declared);
      report.diagnostics.push_back(std::move(diag));
    }
  };
  for (const KernelDef& def : program.kernels()) {
    for (size_t i = 0; i < def.fetches.size(); ++i) {
      check_slice(def, true, i, def.fetches[i].field, def.fetches[i].slice);
    }
    for (size_t i = 0; i < def.stores.size(); ++i) {
      check_slice(def, false, i, def.stores[i].field, def.stores[i].slice);
    }
  }
}

// --- P2G-W009 ---------------------------------------------------------------

void check_dead_stores(const Program& program,
                       const std::vector<Age>& first_feasible,
                       LintReport& report) {
  for (const FieldDecl& field : program.fields()) {
    // Collect feasible consumers once; a field nobody (feasibly) fetches is
    // either a terminal output or root-caused as W002/W006.
    struct Reader {
      AgeSet ages;
      Footprint fp;
    };
    std::vector<Reader> readers;
    for (const Program::Use& c : program.consumers_of(field.id)) {
      if (first_feasible[static_cast<size_t>(c.kernel)] >= kInfeasible) {
        continue;
      }
      const FetchDecl& f = program.kernel(c.kernel).fetches[c.statement];
      const AgeSet ages = age_set_of(
          f.age, first_feasible[static_cast<size_t>(c.kernel)]);
      if (!ages.feasible) continue;
      readers.push_back(
          Reader{ages, footprint_of(program, field.id, f.slice)});
    }
    if (readers.empty()) continue;

    for (const Program::Use& p : program.producers_of(field.id)) {
      const KernelDef& def = program.kernel(p.kernel);
      if (first_feasible[static_cast<size_t>(p.kernel)] >= kInfeasible) {
        continue;
      }
      const StoreDecl& s = def.stores[p.statement];
      const AgeSet store_ages = age_set_of(
          s.age, first_feasible[static_cast<size_t>(p.kernel)]);
      if (!store_ages.feasible) continue;  // negative const age: W004
      const Footprint store_fp = footprint_of(program, field.id, s.slice);
      bool read = false;
      for (const Reader& r : readers) {
        if (age_sets_intersect(store_ages, r.ages) &&
            may_overlap(store_fp, r.fp)) {
          read = true;
          break;
        }
      }
      if (read) continue;
      Diagnostic d;
      d.code = kDeadStore;
      d.severity = Severity::kWarning;
      d.primary = Anchor::store(def.name, p.statement);
      d.secondary = Anchor::field(field.name);
      d.message = access_to_string(program, def, false, p.statement) +
                  " writes elements of field '" + field.name +
                  "' that no fetch ever reads (" +
                  std::to_string(readers.size()) +
                  " consumer(s) checked: ages never meet or slices are "
                  "disjoint); the store is dead";
      report.diagnostics.push_back(std::move(d));
    }
  }
}

// --- the pass ---------------------------------------------------------------

DependenceReport analyze_dependences(const Program& program) {
  DependenceReport report;
  const std::vector<Age> first =
      DependencyAnalyzer::first_feasible_ages(program);

  for (const KernelDef& def : program.kernels()) {
    const auto add = [&](bool is_fetch, size_t statement, FieldId field,
                         const AgeExpr& age, const nd::SliceSpec& slice) {
      AccessInfo a;
      a.kernel = def.id;
      a.kernel_name = def.name;
      a.is_fetch = is_fetch;
      a.statement = statement;
      a.field = field;
      a.field_name = program.field(field).name;
      a.pattern =
          classify(def, is_fetch, field, age, slice, &a.stencil_radius);
      a.footprint = footprint_of(program, field, slice);
      a.text = access_to_string(program, def, is_fetch, statement);
      report.accesses.push_back(std::move(a));
    };
    for (size_t i = 0; i < def.fetches.size(); ++i) {
      add(true, i, def.fetches[i].field, def.fetches[i].age,
          def.fetches[i].slice);
    }
    for (size_t i = 0; i < def.stores.size(); ++i) {
      add(false, i, def.stores[i].field, def.stores[i].age,
          def.stores[i].slice);
    }
  }

  report.edges = build_edges(program, first);
  report.bounds = field_bounds(program);
  report.diagnostics = lint(program);
  report_fusion_legality(program, report.edges, report.diagnostics);
  report_field_bounds(report.bounds, report.diagnostics);
  report.certificates =
      derive_certificates(program, first, report.diagnostics);
  return report;
}

std::string DependenceReport::to_text() const {
  std::string out;
  out += "== accesses ==\n";
  for (const AccessInfo& a : accesses) {
    out += "  " + a.kernel_name + (a.is_fetch ? " fetch #" : " store #") +
           std::to_string(a.statement) + ": " + a.text +
           "  pattern=" + std::string(to_string(a.pattern));
    if (a.pattern == AccessPattern::kStencil) {
      out += " radius=" + std::to_string(a.stencil_radius);
    }
    out += "  footprint=" + a.footprint.to_string() + "\n";
  }
  out += "== dependence edges ==\n";
  for (const DependenceEdge& e : edges) {
    out += "  " + e.field_name + ": " + e.producer_name + " store #" +
           std::to_string(e.store) + " -> " + e.consumer_name +
           " fetch #" + std::to_string(e.fetch) + "  age-dist=";
    out += e.age_distance.has_value() ? std::to_string(*e.age_distance)
                                      : std::string("*");
    out += "  elem-dist=";
    if (e.elem_distance.empty()) {
      out += "(whole)";
    } else {
      for (const std::string& d : e.elem_distance) out += "[" + d + "]";
    }
    out += e.fusible ? "  fusible=yes"
                     : "  fusible=no (" + e.blocker + ")";
    out += "\n";
  }
  out += "== per-age footprint bounds ==\n";
  for (const FieldBound& b : bounds) {
    out += "  " + b.field_name + ": " + b.elements + " element(s)";
    if (b.bytes.has_value()) {
      out += " = " + std::to_string(*b.bytes) + " bytes";
    }
    out += "\n";
  }
  out += "== independence certificates (" +
         std::to_string(certificates.size()) + ") ==\n";
  for (const IndependenceCertificate& c : certificates) {
    const AccessInfo* access = nullptr;
    for (const AccessInfo& a : accesses) {
      if (a.is_fetch && a.kernel == c.consumer && a.statement == c.fetch) {
        access = &a;
        break;
      }
    }
    out += "  " + std::string(p2g::to_string(c.kind)) + ": " +
           (access != nullptr ? access->kernel_name + " fetch #" +
                                    std::to_string(c.fetch)
                              : "fetch #" + std::to_string(c.fetch)) +
           " — " + c.reason + "\n";
  }
  const std::string diag_text = diagnostics.to_text();
  if (!diag_text.empty()) {
    out += "== diagnostics ==\n" + diag_text;
  }
  return out;
}

std::string DependenceReport::to_json() const {
  std::ostringstream os;
  os << "{\"accesses\":[";
  for (size_t i = 0; i < accesses.size(); ++i) {
    const AccessInfo& a = accesses[i];
    if (i > 0) os << ",";
    os << "{\"kernel\":\"" << json_escape(a.kernel_name) << "\",\"kind\":\""
       << (a.is_fetch ? "fetch" : "store") << "\",\"statement\":"
       << a.statement << ",\"field\":\"" << json_escape(a.field_name)
       << "\",\"pattern\":\"" << to_string(a.pattern) << "\"";
    if (a.pattern == AccessPattern::kStencil) {
      os << ",\"radius\":" << a.stencil_radius;
    }
    os << ",\"footprint\":\"" << json_escape(a.footprint.to_string())
       << "\",\"text\":\"" << json_escape(a.text) << "\"}";
  }
  os << "],\"edges\":[";
  for (size_t i = 0; i < edges.size(); ++i) {
    const DependenceEdge& e = edges[i];
    if (i > 0) os << ",";
    os << "{\"field\":\"" << json_escape(e.field_name)
       << "\",\"producer\":\"" << json_escape(e.producer_name)
       << "\",\"store\":" << e.store << ",\"consumer\":\""
       << json_escape(e.consumer_name) << "\",\"fetch\":" << e.fetch;
    os << ",\"age_distance\":";
    if (e.age_distance.has_value()) {
      os << *e.age_distance;
    } else {
      os << "null";
    }
    os << ",\"elem_distance\":[";
    for (size_t d = 0; d < e.elem_distance.size(); ++d) {
      if (d > 0) os << ",";
      os << "\"" << json_escape(e.elem_distance[d]) << "\"";
    }
    os << "],\"fusible\":" << (e.fusible ? "true" : "false");
    if (!e.fusible) os << ",\"blocker\":\"" << json_escape(e.blocker) << "\"";
    os << "}";
  }
  os << "],\"bounds\":[";
  for (size_t i = 0; i < bounds.size(); ++i) {
    const FieldBound& b = bounds[i];
    if (i > 0) os << ",";
    os << "{\"field\":\"" << json_escape(b.field_name)
       << "\",\"elements\":\"" << json_escape(b.elements) << "\"";
    if (b.bytes.has_value()) os << ",\"bytes\":" << *b.bytes;
    os << "}";
  }
  os << "],\"certificates\":[";
  for (size_t i = 0; i < certificates.size(); ++i) {
    const IndependenceCertificate& c = certificates[i];
    if (i > 0) os << ",";
    std::string consumer_name;
    for (const AccessInfo& a : accesses) {
      if (a.is_fetch && a.kernel == c.consumer && a.statement == c.fetch) {
        consumer_name = a.kernel_name;
        break;
      }
    }
    std::string field_name;
    for (const AccessInfo& a : accesses) {
      if (a.field == c.field) {
        field_name = a.field_name;
        break;
      }
    }
    os << "{\"kind\":\"" << p2g::to_string(c.kind) << "\",\"field\":\""
       << json_escape(field_name) << "\",\"consumer\":\""
       << json_escape(consumer_name) << "\",\"fetch\":" << c.fetch
       << ",\"reason\":\"" << json_escape(c.reason) << "\"}";
  }
  os << "],\"diagnostics\":" << diagnostics.to_json() << "}";
  return os.str();
}

}  // namespace p2g::analysis

namespace p2g {

size_t Program::certify() {
  analysis::DependenceReport report = analysis::analyze_dependences(*this);
  certificates_ = std::move(report.certificates);
  return certificates_.size();
}

}  // namespace p2g
