// Diagnostics emitted by p2g-lint (src/analysis/lint.h).
//
// Every diagnostic carries a stable code (P2G-Wxxx) so tests, editors and
// CI can match on the class of problem without parsing message text. A
// diagnostic anchors to a kernel, a field, or one fetch/store statement of
// a kernel; conflict diagnostics (e.g. two stores racing on the same
// elements) carry a secondary anchor naming the other party. The lang
// front end (lang_lint.h) additionally annotates anchors with source line
// numbers.
#pragma once

#include <cstddef>
#include <string>
#include <string_view>
#include <vector>

namespace p2g::analysis {

// Stable diagnostic codes. Never renumber: tests, suppression lists and
// editor integrations key on these strings.
inline constexpr const char* kWriteConflict = "P2G-W001";
inline constexpr const char* kUndefinedFetch = "P2G-W002";
inline constexpr const char* kZeroAgingCycle = "P2G-W003";
inline constexpr const char* kBadConstIndex = "P2G-W004";
inline constexpr const char* kUnusedField = "P2G-W005";
inline constexpr const char* kUnreachableKernel = "P2G-W006";
inline constexpr const char* kUnboundedGrowth = "P2G-W007";
inline constexpr const char* kOutOfBoundsSlice = "P2G-W008";
inline constexpr const char* kDeadStore = "P2G-W009";
inline constexpr const char* kFusionLegality = "P2G-W010";
inline constexpr const char* kFootprintBound = "P2G-W011";

// Concurrency diagnostics emitted by p2gcheck (src/check). Same stable-code
// contract as the lint codes above.
inline constexpr const char* kDataRace = "P2G-C001";
inline constexpr const char* kLockCycle = "P2G-C002";
inline constexpr const char* kLostWakeup = "P2G-C003";
inline constexpr const char* kLiveLock = "P2G-C004";

/// kInfo diagnostics are analysis *reports* (fusion legality, footprint
/// bounds), not findings: p2glint never emits them and --werror ignores
/// them; they surface through p2gdep's dependence report only.
enum class Severity { kInfo, kWarning, kError };

std::string_view to_string(Severity severity);

/// Program location a diagnostic points at.
struct Anchor {
  enum class Kind { kNone, kField, kKernel, kFetch, kStore, kSite };

  Kind kind = Kind::kNone;
  /// Kernel name for kKernel/kFetch/kStore, field name for kField, free
  /// text (e.g. "thread 'worker' write blocking_queue.h:42") for kSite.
  std::string name;
  /// Fetch/store declaration index within the kernel (kFetch/kStore only).
  size_t statement = 0;
  /// 1-based source line, when the program came from kernel-language
  /// source (annotated by lang_lint) or, for kSite anchors, from the
  /// instrumentation call site; 0 = unknown / built via the C++ API.
  int line = 0;

  static Anchor none() { return Anchor{}; }
  static Anchor field(std::string name);
  static Anchor kernel(std::string name);
  static Anchor fetch(std::string kernel, size_t statement);
  static Anchor store(std::string kernel, size_t statement);
  /// Free-text anchor for concurrency diagnostics: a thread + operation +
  /// source site ("thread 'closer' write of queue.closed").
  static Anchor site(std::string description, int line = 0);

  /// "kernel 'mul2' store #0", "field 'm_data'", with ":line N" appended
  /// when a source line is known.
  std::string to_string() const;
};

struct Diagnostic {
  std::string code;  ///< one of the P2G-Wxxx constants above
  Severity severity = Severity::kError;
  std::string message;
  Anchor primary;
  /// Other party of a conflict (Kind::kNone when not applicable).
  Anchor secondary;

  /// "error P2G-W001 at kernel 'a' store #0 (vs kernel 'b' store #1): ..."
  std::string to_string() const;
  std::string to_json() const;
};

/// Result of a lint run: every diagnostic, in pass order.
struct LintReport {
  std::vector<Diagnostic> diagnostics;

  bool empty() const { return diagnostics.empty(); }
  size_t error_count() const;
  size_t warning_count() const;
  size_t info_count() const;
  bool has_errors() const { return error_count() > 0; }

  /// Number of diagnostics with the given code.
  size_t count(std::string_view code) const;
  /// First diagnostic with the given code, or nullptr.
  const Diagnostic* find(std::string_view code) const;

  /// One line per diagnostic plus a trailing summary line; empty string
  /// when the report is clean.
  std::string to_text() const;
  /// {"diagnostics":[...],"errors":N,"warnings":M}
  std::string to_json() const;
};

}  // namespace p2g::analysis
