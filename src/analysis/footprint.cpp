#include "analysis/footprint.h"

#include <algorithm>
#include <numeric>

#include "common/error.h"

namespace p2g::analysis {

std::string SymBound::to_string() const {
  switch (kind) {
    case Kind::kFinite:
      return std::to_string(value);
    case Kind::kExtent:
      return "|f" + std::to_string(field) + "." + std::to_string(dim) + "|";
    case Kind::kUnbounded:
      return "inf";
  }
  return "?";
}

DimFootprint DimFootprint::range(int64_t lo, SymBound hi, int64_t step) {
  check_argument(step >= 1,
                 "DimFootprint::range needs step >= 1 (use normalize for "
                 "raw triples)");
  DimFootprint f{lo, hi, step};
  if (f.is_empty()) return empty();
  if (f.hi.is_finite()) {
    // Canonical hi: one past the last *reachable* element, so equal sets
    // compare equal ([0,7):2 and [0,6):2 are both {0,2,4}).
    const int64_t last = lo + ((f.hi.value - 1 - lo) / step) * step;
    f.hi = SymBound::finite(last + 1);
    if (f.is_point()) f.step = 1;
  }
  return f;
}

DimFootprint normalize(int64_t start, int64_t stop, int64_t step) {
  check_argument(step != 0, "footprint stride must be non-zero");
  if (step > 0) {
    if (stop <= start) return DimFootprint::empty();
    return DimFootprint::range(start, SymBound::finite(stop), step);
  }
  // Downward walk start, start+step, ... > stop: same set ascending.
  if (stop >= start) return DimFootprint::empty();
  const int64_t n = (start - stop - 1) / (-step);  // index of the last hit
  const int64_t lo = start + n * step;
  return DimFootprint::range(lo, SymBound::finite(start + 1), -step);
}

std::string DimFootprint::to_string() const {
  if (is_empty()) return "{}";
  if (is_point()) return std::to_string(lo);
  std::string out = "[" + std::to_string(lo) + "," + hi.to_string() + ")";
  if (step > 1) out += ":" + std::to_string(step);
  return out;
}

bool may_overlap(const DimFootprint& a, const DimFootprint& b) {
  if (a.is_empty() || b.is_empty()) return false;
  // Range separation. A symbolic/unbounded hi can always reach the other
  // set's lo, so only a finite hi separates.
  if (a.hi.is_finite() && a.hi.value <= b.lo) return false;
  if (b.hi.is_finite() && b.hi.value <= a.lo) return false;
  // Residue separation: every common element must satisfy
  // x ≡ a.lo (mod a.step) and x ≡ b.lo (mod b.step), solvable iff
  // gcd(a.step, b.step) divides the offset difference.
  const int64_t g = std::gcd(a.step, b.step);
  if (g > 1 && (a.lo - b.lo) % g != 0) return false;
  return true;
}

bool contains(const DimFootprint& outer, const DimFootprint& inner) {
  if (inner.is_empty()) return true;
  if (outer.is_empty()) return false;
  // Lower bound.
  if (inner.lo < outer.lo) return false;
  // Stride: every element of inner must hit outer's lattice. inner's
  // elements are inner.lo + k*inner.step; they all lie on outer's lattice
  // iff inner.lo does and inner.step is a multiple of outer.step.
  if ((inner.lo - outer.lo) % outer.step != 0) return false;
  if (!inner.is_point() && inner.step % outer.step != 0) return false;
  // Upper bound.
  switch (outer.hi.kind) {
    case SymBound::Kind::kUnbounded:
      return true;
    case SymBound::Kind::kFinite:
      if (inner.hi.is_finite()) return inner.hi.value <= outer.hi.value;
      return false;  // symbolic/unbounded inner can exceed any constant
    case SymBound::Kind::kExtent:
      // Only the *same* symbol is provably <= (extents are opaque).
      return inner.hi == outer.hi && inner.lo >= 0;
  }
  return false;
}

bool Footprint::is_empty() const {
  if (whole) return false;
  return std::any_of(dims.begin(), dims.end(),
                     [](const DimFootprint& d) { return d.is_empty(); });
}

std::string Footprint::to_string() const {
  if (whole) return "whole";
  std::string out;
  for (const DimFootprint& d : dims) {
    out += "[" + d.to_string() + "]";
  }
  return out.empty() ? "[]" : out;
}

bool may_overlap(const Footprint& a, const Footprint& b) {
  if (a.field != b.field) return false;
  if (a.is_empty() || b.is_empty()) return false;
  if (a.whole || b.whole) return true;
  if (a.dims.size() != b.dims.size()) return true;  // stay conservative
  for (size_t d = 0; d < a.dims.size(); ++d) {
    if (!may_overlap(a.dims[d], b.dims[d])) return false;
  }
  return true;
}

bool contains(const Footprint& outer, const Footprint& inner) {
  if (outer.field != inner.field) return false;
  if (inner.is_empty()) return true;
  if (outer.whole) return true;
  if (inner.whole) return false;
  if (outer.dims.size() != inner.dims.size()) return false;
  for (size_t d = 0; d < outer.dims.size(); ++d) {
    if (!contains(outer.dims[d], inner.dims[d])) return false;
  }
  return true;
}

}  // namespace p2g::analysis
