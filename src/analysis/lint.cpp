#include "analysis/lint.h"

#include <algorithm>
#include <functional>
#include <limits>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "analysis/dependence.h"
#include "common/error.h"
#include "core/dependency.h"

namespace p2g::analysis {
namespace {

constexpr Age kInfeasible = DependencyAnalyzer::kInfeasible;

/// Concrete ages a statement may touch: a point {lo} for constant ages, a
/// half-open ray [lo, inf) for relative ages of a feasible kernel.
struct AgeSet {
  bool feasible = false;
  Age lo = 0;
  bool unbounded = false;
};

AgeSet age_set_of(const AgeExpr& age, Age kernel_first) {
  AgeSet s;
  if (age.kind == AgeExpr::Kind::kConst) {
    s.feasible = age.value >= 0;
    s.lo = age.value;
    return s;
  }
  if (kernel_first >= kInfeasible) return s;  // kernel never runs
  s.feasible = true;
  s.lo = std::max<Age>(kernel_first + age.value, 0);
  s.unbounded = true;
  return s;
}

bool age_sets_intersect(const AgeSet& a, const AgeSet& b, Age* example) {
  if (!a.feasible || !b.feasible) return false;
  const Age lo = std::max(a.lo, b.lo);
  const Age hi_a = a.unbounded ? std::numeric_limits<Age>::max() : a.lo;
  const Age hi_b = b.unbounded ? std::numeric_limits<Age>::max() : b.lo;
  if (lo > std::min(hi_a, hi_b)) return false;
  if (example != nullptr) *example = lo;
  return true;
}

bool contains_age(const AgeSet& s, Age v) {
  return s.feasible && v >= s.lo && (s.unbounded || v == s.lo);
}

/// May the two slices address a common element? Per dimension, constants
/// are points and variable/all dimensions cover the full (unknown) extent,
/// so the only certain separation is two distinct constants.
bool slices_may_overlap(const nd::SliceSpec& a, const nd::SliceSpec& b) {
  if (a.is_whole() || b.is_whole()) return true;
  if (a.rank() != b.rank()) return true;  // rank mismatch: stay conservative
  for (size_t d = 0; d < a.rank(); ++d) {
    const nd::SliceDim& x = a.dims()[d];
    const nd::SliceDim& y = b.dims()[d];
    if (x.kind == nd::SliceDim::Kind::kConst &&
        y.kind == nd::SliceDim::Kind::kConst && x.value != y.value) {
      return false;
    }
  }
  return true;
}

std::string age_to_string(const AgeExpr& age) {
  if (age.kind == AgeExpr::Kind::kConst) return std::to_string(age.value);
  if (age.value == 0) return "a";
  if (age.value > 0) return "a+" + std::to_string(age.value);
  return "a" + std::to_string(age.value);
}

std::string slice_to_string(const KernelDef& def, const nd::SliceSpec& slice) {
  if (slice.is_whole()) return "";
  std::string out;
  for (const nd::SliceDim& d : slice.dims()) {
    out += '[';
    switch (d.kind) {
      case nd::SliceDim::Kind::kAll:
        out += '*';
        break;
      case nd::SliceDim::Kind::kVar:
        out += def.index_vars[static_cast<size_t>(d.var)];
        break;
      case nd::SliceDim::Kind::kConst:
        out += std::to_string(d.value);
        break;
    }
    out += ']';
  }
  return out;
}

std::string store_to_string(const Program& program, const KernelDef& def,
                            size_t statement) {
  const StoreDecl& s = def.stores[statement];
  return "store " + program.field(s.field).name + "(" +
         age_to_string(s.age) + ")" + slice_to_string(def, s.slice);
}

std::string fetch_to_string(const Program& program, const KernelDef& def,
                            size_t statement) {
  const FetchDecl& f = def.fetches[statement];
  return "fetch " + program.field(f.field).name + "(" +
         age_to_string(f.age) + ")" + slice_to_string(def, f.slice);
}

// --- P2G-W001: write-once conflicts ----------------------------------------

void check_write_conflicts(const Program& program,
                           const std::vector<Age>& first_feasible,
                           LintReport& report) {
  for (const FieldDecl& field : program.fields()) {
    const auto& producers = program.producers_of(field.id);

    // One statement, many index instances: if a store slice leaves some of
    // the kernel's index variables unaddressed, instances differing only in
    // those variables write the same elements at the same age.
    for (const Program::Use& p : producers) {
      const KernelDef& def = program.kernel(p.kernel);
      if (first_feasible[static_cast<size_t>(p.kernel)] >= kInfeasible) {
        continue;
      }
      if (def.index_vars.empty()) continue;
      const StoreDecl& s = def.stores[p.statement];
      const std::vector<int> used =
          s.slice.is_whole() ? std::vector<int>{} : s.slice.vars();
      std::string missing;
      for (size_t v = 0; v < def.index_vars.size(); ++v) {
        if (std::find(used.begin(), used.end(), static_cast<int>(v)) ==
            used.end()) {
          if (!missing.empty()) missing += ", ";
          missing += "'" + def.index_vars[v] + "'";
        }
      }
      if (missing.empty()) continue;
      Diagnostic d;
      d.code = kWriteConflict;
      d.severity = Severity::kError;
      d.primary = Anchor::store(def.name, p.statement);
      d.secondary = Anchor::field(field.name);
      d.message = store_to_string(program, def, p.statement) +
                  " does not address index variable(s) " + missing +
                  "; instances of '" + def.name +
                  "' that differ only there write overlapping slices of "
                  "field '" +
                  field.name + "' at the same age";
      report.diagnostics.push_back(std::move(d));
    }

    // Pairs of store statements (across kernels or within one kernel)
    // whose concrete-age sets intersect and whose slices may overlap.
    for (size_t i = 0; i < producers.size(); ++i) {
      const KernelDef& ki = program.kernel(producers[i].kernel);
      const StoreDecl& si = ki.stores[producers[i].statement];
      const AgeSet ages_i = age_set_of(
          si.age, first_feasible[static_cast<size_t>(producers[i].kernel)]);
      for (size_t j = i + 1; j < producers.size(); ++j) {
        const KernelDef& kj = program.kernel(producers[j].kernel);
        const StoreDecl& sj = kj.stores[producers[j].statement];
        const AgeSet ages_j = age_set_of(
            sj.age,
            first_feasible[static_cast<size_t>(producers[j].kernel)]);
        Age example = 0;
        if (!age_sets_intersect(ages_i, ages_j, &example)) continue;
        if (!slices_may_overlap(si.slice, sj.slice)) continue;
        Diagnostic d;
        d.code = kWriteConflict;
        d.severity = Severity::kError;
        d.primary = Anchor::store(ki.name, producers[i].statement);
        d.secondary = Anchor::store(kj.name, producers[j].statement);
        d.message =
            store_to_string(program, ki, producers[i].statement) + " and " +
            store_to_string(program, kj, producers[j].statement) +
            " may write overlapping elements of field '" + field.name +
            "' at the same concrete age (e.g. age " +
            std::to_string(example) + ")";
        report.diagnostics.push_back(std::move(d));
      }
    }
  }
}

// --- P2G-W002: fetch of a never-stored field -------------------------------

void check_undefined_fetches(const Program& program, LintReport& report) {
  for (const FieldDecl& field : program.fields()) {
    if (!program.producers_of(field.id).empty()) continue;
    for (const Program::Use& c : program.consumers_of(field.id)) {
      const KernelDef& def = program.kernel(c.kernel);
      Diagnostic d;
      d.code = kUndefinedFetch;
      d.severity = Severity::kError;
      d.primary = Anchor::fetch(def.name, c.statement);
      d.secondary = Anchor::field(field.name);
      d.message = fetch_to_string(program, def, c.statement) +
                  " reads field '" + field.name +
                  "' which no kernel stores; instances of '" + def.name +
                  "' can never run";
      report.diagnostics.push_back(std::move(d));
    }
  }
}

// --- P2G-W004: constant ages/indices that can never be satisfied -----------

void check_const_indices(const Program& program,
                         const std::vector<Age>& first_feasible,
                         LintReport& report) {
  const auto negative_const_dims = [&](const nd::SliceSpec& slice,
                                       const Anchor& anchor,
                                       const std::string& field_name,
                                       const std::string& what) {
    if (slice.is_whole()) return;
    for (size_t dim = 0; dim < slice.rank(); ++dim) {
      const nd::SliceDim& d = slice.dims()[dim];
      if (d.kind == nd::SliceDim::Kind::kConst && d.value < 0) {
        Diagnostic diag;
        diag.code = kBadConstIndex;
        diag.severity = Severity::kError;
        diag.primary = anchor;
        diag.secondary = Anchor::field(field_name);
        diag.message = what + " uses constant index " +
                       std::to_string(d.value) + " in dimension " +
                       std::to_string(dim) + "; indices start at 0";
        report.diagnostics.push_back(std::move(diag));
      }
    }
  };

  for (const KernelDef& def : program.kernels()) {
    for (size_t i = 0; i < def.stores.size(); ++i) {
      const StoreDecl& s = def.stores[i];
      const Anchor anchor = Anchor::store(def.name, i);
      if (s.age.kind == AgeExpr::Kind::kConst && s.age.value < 0) {
        Diagnostic d;
        d.code = kBadConstIndex;
        d.severity = Severity::kError;
        d.primary = anchor;
        d.secondary = Anchor::field(program.field(s.field).name);
        d.message = store_to_string(program, def, i) +
                    " targets constant age " + std::to_string(s.age.value) +
                    "; ages start at 0";
        report.diagnostics.push_back(std::move(d));
      }
      negative_const_dims(s.slice, anchor, program.field(s.field).name,
                          store_to_string(program, def, i));
    }

    for (size_t i = 0; i < def.fetches.size(); ++i) {
      const FetchDecl& f = def.fetches[i];
      const Anchor anchor = Anchor::fetch(def.name, i);
      const std::string text = fetch_to_string(program, def, i);
      if (f.age.kind == AgeExpr::Kind::kConst && f.age.value < 0) {
        Diagnostic d;
        d.code = kBadConstIndex;
        d.severity = Severity::kError;
        d.primary = anchor;
        d.secondary = Anchor::field(program.field(f.field).name);
        d.message = text + " reads constant age " +
                    std::to_string(f.age.value) + "; ages start at 0";
        report.diagnostics.push_back(std::move(d));
        continue;
      }
      negative_const_dims(f.slice, anchor, program.field(f.field).name, text);

      // Coverage of constant ages / constant indices against the field's
      // feasible producers (skipped entirely when the field has none —
      // that is W002's finding, or when every producer is unreachable —
      // that is W006's).
      std::vector<const StoreDecl*> feasible;
      std::vector<AgeSet> feasible_ages;
      for (const Program::Use& p : program.producers_of(f.field)) {
        const Age ff = first_feasible[static_cast<size_t>(p.kernel)];
        if (ff >= kInfeasible) continue;
        const StoreDecl& s = program.kernel(p.kernel).stores[p.statement];
        const AgeSet ages = age_set_of(s.age, ff);
        if (!ages.feasible) continue;
        feasible.push_back(&s);
        feasible_ages.push_back(ages);
      }
      if (feasible.empty()) continue;

      if (f.age.kind == AgeExpr::Kind::kConst) {
        bool covered = false;
        std::string produced;
        for (size_t p = 0; p < feasible.size(); ++p) {
          if (contains_age(feasible_ages[p], f.age.value)) covered = true;
          if (!produced.empty()) produced += ", ";
          produced += std::to_string(feasible_ages[p].lo);
          if (feasible_ages[p].unbounded) produced += "+";
        }
        if (!covered) {
          Diagnostic d;
          d.code = kBadConstIndex;
          d.severity = Severity::kError;
          d.primary = anchor;
          d.secondary = Anchor::field(program.field(f.field).name);
          d.message = text + " reads constant age " +
                      std::to_string(f.age.value) +
                      " which no producer ever writes (produced ages: " +
                      produced + ")";
          report.diagnostics.push_back(std::move(d));
        }
      }

      if (f.slice.is_whole()) continue;
      for (size_t dim = 0; dim < f.slice.rank(); ++dim) {
        const nd::SliceDim& d = f.slice.dims()[dim];
        if (d.kind != nd::SliceDim::Kind::kConst || d.value < 0) continue;
        bool covered = false;
        std::string produced;
        for (const StoreDecl* s : feasible) {
          if (s->slice.is_whole() || dim >= s->slice.rank() ||
              s->slice.dims()[dim].kind != nd::SliceDim::Kind::kConst) {
            covered = true;  // variable/all extent may reach the index
            break;
          }
          if (s->slice.dims()[dim].value == d.value) {
            covered = true;
            break;
          }
          if (!produced.empty()) produced += ", ";
          produced += std::to_string(s->slice.dims()[dim].value);
        }
        if (!covered) {
          Diagnostic diag;
          diag.code = kBadConstIndex;
          diag.severity = Severity::kError;
          diag.primary = anchor;
          diag.secondary = Anchor::field(program.field(f.field).name);
          diag.message = text + " reads constant index " +
                         std::to_string(d.value) + " in dimension " +
                         std::to_string(dim) +
                         " which no producer ever writes (stored indices: " +
                         produced + ")";
          report.diagnostics.push_back(std::move(diag));
        }
      }
    }
  }
}

// --- P2G-W003: dependency cycles with zero net aging -----------------------

struct AgingEdge {
  size_t from;  ///< producer kernel
  size_t to;    ///< consumer kernel
  int64_t offset;  ///< store offset - fetch offset (ages of slack per turn)
  FieldId via;
};

/// Collects every (relative store, relative fetch) pair as a kernel->kernel
/// edge. Constant ages on either side break the age recurrence (a fixed age
/// is written/read once, not once per iteration) and are excluded.
std::vector<AgingEdge> aging_edges(const Program& program) {
  std::vector<AgingEdge> edges;
  for (const FieldDecl& field : program.fields()) {
    for (const Program::Use& p : program.producers_of(field.id)) {
      const StoreDecl& s = program.kernel(p.kernel).stores[p.statement];
      if (s.age.kind != AgeExpr::Kind::kRelative) continue;
      for (const Program::Use& c : program.consumers_of(field.id)) {
        const FetchDecl& f = program.kernel(c.kernel).fetches[c.statement];
        if (f.age.kind != AgeExpr::Kind::kRelative) continue;
        edges.push_back(AgingEdge{static_cast<size_t>(p.kernel),
                                  static_cast<size_t>(c.kernel),
                                  s.age.value - f.age.value, field.id});
      }
    }
  }
  return edges;
}

/// Strongly connected components over the aging edges (Tarjan).
std::vector<std::vector<size_t>> components(size_t n,
                                            const std::vector<AgingEdge>& edges) {
  std::vector<std::vector<size_t>> adjacency(n);
  for (const AgingEdge& e : edges) adjacency[e.from].push_back(e.to);

  std::vector<int> index(n, -1);
  std::vector<int> lowlink(n, 0);
  std::vector<bool> on_stack(n, false);
  std::vector<size_t> stack;
  std::vector<std::vector<size_t>> sccs;
  int next_index = 0;

  std::function<void(size_t)> strongconnect = [&](size_t v) {
    index[v] = lowlink[v] = next_index++;
    stack.push_back(v);
    on_stack[v] = true;
    for (size_t w : adjacency[v]) {
      if (index[w] < 0) {
        strongconnect(w);
        lowlink[v] = std::min(lowlink[v], lowlink[w]);
      } else if (on_stack[w]) {
        lowlink[v] = std::min(lowlink[v], index[w]);
      }
    }
    if (lowlink[v] == index[v]) {
      std::vector<size_t> scc;
      size_t w;
      do {
        w = stack.back();
        stack.pop_back();
        on_stack[w] = false;
        scc.push_back(w);
      } while (w != v);
      sccs.push_back(std::move(scc));
    }
  };
  for (size_t v = 0; v < n; ++v) {
    if (index[v] < 0) strongconnect(v);
  }
  return sccs;
}

void check_aging_cycles(const Program& program, LintReport& report,
                        std::set<std::string>& cycle_kernels) {
  const size_t n = program.kernels().size();
  const std::vector<AgingEdge> edges = aging_edges(program);

  for (const std::vector<size_t>& scc : components(n, edges)) {
    // Local subgraph of the component.
    std::map<size_t, size_t> local_of;
    for (size_t i = 0; i < scc.size(); ++i) local_of[scc[i]] = i;
    struct LocalEdge {
      size_t from, to;
      int64_t w;       ///< transformed weight
      size_t global;   ///< index into `edges`
    };
    std::vector<LocalEdge> local;
    const auto local_n = static_cast<int64_t>(scc.size());
    for (size_t ei = 0; ei < edges.size(); ++ei) {
      const auto fit = local_of.find(edges[ei].from);
      const auto tit = local_of.find(edges[ei].to);
      if (fit == local_of.end() || tit == local_of.end()) continue;
      // A cycle of length L <= local_n has transformed weight
      // sum(offset) * (local_n + 1) - L, which is negative iff
      // sum(offset) <= 0 — so Bellman-Ford negative-cycle detection finds
      // exactly the cycles aging cannot unroll.
      local.push_back(LocalEdge{fit->second, tit->second,
                                edges[ei].offset * (local_n + 1) - 1, ei});
    }
    if (local.empty()) continue;

    std::vector<int64_t> dist(scc.size(), 0);
    std::vector<int> pred(scc.size(), -1);
    int witness = -1;
    for (size_t iter = 0; iter <= scc.size(); ++iter) {
      bool relaxed = false;
      for (size_t li = 0; li < local.size(); ++li) {
        const LocalEdge& e = local[li];
        if (dist[e.from] + e.w < dist[e.to]) {
          dist[e.to] = dist[e.from] + e.w;
          pred[e.to] = static_cast<int>(li);
          relaxed = true;
          if (iter == scc.size()) witness = static_cast<int>(e.to);
        }
      }
      if (!relaxed) break;
    }
    if (witness < 0) continue;  // every cycle here ages forward

    // Walk predecessors |scc| steps to land on the negative cycle, then
    // collect it.
    size_t at = static_cast<size_t>(witness);
    for (size_t i = 0; i < scc.size(); ++i) {
      at = local[static_cast<size_t>(pred[at])].from;
    }
    std::vector<size_t> cycle;  // local edge indices, reversed
    size_t cur = at;
    do {
      const auto li = static_cast<size_t>(pred[cur]);
      cycle.push_back(li);
      cur = local[li].from;
    } while (cur != at);
    std::reverse(cycle.begin(), cycle.end());

    int64_t net = 0;
    std::string path = program.kernel(
        static_cast<KernelId>(scc[local[cycle.front()].from])).name;
    for (size_t li : cycle) {
      const AgingEdge& e = edges[local[li].global];
      net += e.offset;
      path += " -[" + program.field(e.via).name + "]-> " +
              program.kernel(static_cast<KernelId>(e.to)).name;
      cycle_kernels.insert(
          program.kernel(static_cast<KernelId>(e.from)).name);
      cycle_kernels.insert(program.kernel(static_cast<KernelId>(e.to)).name);
    }

    Diagnostic d;
    d.code = kZeroAgingCycle;
    d.severity = Severity::kError;
    d.primary = Anchor::kernel(
        program.kernel(static_cast<KernelId>(scc[local[cycle.front()].from]))
            .name);
    d.message = "dependency cycle with net aging " + std::to_string(net) +
                " per turn: " + path +
                "; every instance depends on one at the same or a later "
                "age, so aging can never unroll the cycle (guaranteed "
                "deadlock)";
    report.diagnostics.push_back(std::move(d));
  }
}

// --- P2G-W007: unbounded age growth ----------------------------------------
//
// A field stored at a relative age gains one new age every aging turn.
// Consumption is what lets the runtime retire the old ones: a consumer
// fetching at a relative age drains the sequence as the computation
// advances, and a field nobody fetches is a terminal output the host
// collects externally (e.g. smoothing's `averages`). But when every
// consumer pins a constant age, only that one age is ever read — the rest
// of the ever-growing sequence is produced, never fetched and never
// released, so the field's storage grows without bound for the life of the
// run.

void check_unbounded_growth(const Program& program,
                            const std::vector<Age>& first_feasible,
                            LintReport& report) {
  for (const FieldDecl& field : program.fields()) {
    const auto& consumers = program.consumers_of(field.id);
    if (consumers.empty()) continue;  // terminal output, drained externally
    bool only_const_fetches = true;
    for (const Program::Use& c : consumers) {
      const FetchDecl& f = program.kernel(c.kernel).fetches[c.statement];
      if (f.age.kind != AgeExpr::Kind::kConst) {
        only_const_fetches = false;
        break;
      }
    }
    if (!only_const_fetches) continue;

    for (const Program::Use& p : program.producers_of(field.id)) {
      const KernelDef& def = program.kernel(p.kernel);
      const StoreDecl& s = def.stores[p.statement];
      if (s.age.kind != AgeExpr::Kind::kRelative) continue;
      if (first_feasible[static_cast<size_t>(p.kernel)] >= kInfeasible) {
        continue;  // the producer never runs — root-caused as W006
      }
      Diagnostic d;
      d.code = kUnboundedGrowth;
      d.severity = Severity::kWarning;
      d.primary = Anchor::store(def.name, p.statement);
      d.secondary = Anchor::field(field.name);
      d.message = store_to_string(program, def, p.statement) +
                  " writes a new age of field '" + field.name +
                  "' every aging turn, but every fetch of '" + field.name +
                  "' pins a constant age; the growing tail of ages is never "
                  "consumed or released, so its storage grows without bound";
      report.diagnostics.push_back(std::move(d));
    }
  }
}

// --- P2G-W005 / P2G-W006: unused fields, unreachable kernels ---------------

void check_unused(const Program& program,
                  const std::vector<Age>& first_feasible,
                  const std::set<std::string>& cycle_kernels,
                  LintReport& report) {
  for (const FieldDecl& field : program.fields()) {
    if (!program.producers_of(field.id).empty() ||
        !program.consumers_of(field.id).empty()) {
      continue;
    }
    Diagnostic d;
    d.code = kUnusedField;
    d.severity = Severity::kWarning;
    d.primary = Anchor::field(field.name);
    d.message = "field '" + field.name + "' is never stored nor fetched";
    report.diagnostics.push_back(std::move(d));
  }

  for (const KernelDef& def : program.kernels()) {
    if (first_feasible[static_cast<size_t>(def.id)] < kInfeasible) continue;
    // Root-caused elsewhere: part of a reported deadlock cycle, or already
    // carrying an error (undefined fetch, unsatisfiable constant).
    if (cycle_kernels.count(def.name) > 0) continue;
    bool has_error = false;
    for (const Diagnostic& d : report.diagnostics) {
      if (d.severity == Severity::kError && d.primary.name == def.name &&
          d.primary.kind != Anchor::Kind::kField) {
        has_error = true;
        break;
      }
    }
    if (has_error) continue;
    Diagnostic d;
    d.code = kUnreachableKernel;
    d.severity = Severity::kWarning;
    d.primary = Anchor::kernel(def.name);
    d.message = "kernel '" + def.name +
                "' can never run: no chain of stores ever satisfies all of "
                "its fetches";
    report.diagnostics.push_back(std::move(d));
  }
}

}  // namespace

LintReport lint(const Program& program, const LintOptions& options) {
  LintReport report;
  const std::vector<Age> first_feasible =
      DependencyAnalyzer::first_feasible_ages(program);
  check_write_conflicts(program, first_feasible, report);
  check_undefined_fetches(program, report);
  check_const_indices(program, first_feasible, report);
  std::set<std::string> cycle_kernels;
  check_aging_cycles(program, report, cycle_kernels);
  check_unbounded_growth(program, first_feasible, report);
  check_oob_slices(program, report);
  check_dead_stores(program, first_feasible, report);
  if (options.warn_unused) {
    check_unused(program, first_feasible, cycle_kernels, report);
  }
  return report;
}

}  // namespace p2g::analysis

namespace p2g {

analysis::LintReport Program::validate(bool throw_on_error) const {
  analysis::LintReport report = analysis::lint(*this);
  if (throw_on_error && report.has_errors()) {
    throw_error(ErrorKind::kSema,
                "program failed static validation:\n" + report.to_text());
  }
  return report;
}

}  // namespace p2g
