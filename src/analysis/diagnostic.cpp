#include "analysis/diagnostic.h"

#include <sstream>

#include "common/string_util.h"

namespace p2g::analysis {

std::string_view to_string(Severity severity) {
  switch (severity) {
    case Severity::kInfo: return "info";
    case Severity::kWarning: return "warning";
    case Severity::kError: return "error";
  }
  return "error";
}

Anchor Anchor::field(std::string name) {
  Anchor a;
  a.kind = Kind::kField;
  a.name = std::move(name);
  return a;
}

Anchor Anchor::kernel(std::string name) {
  Anchor a;
  a.kind = Kind::kKernel;
  a.name = std::move(name);
  return a;
}

Anchor Anchor::fetch(std::string kernel, size_t statement) {
  Anchor a;
  a.kind = Kind::kFetch;
  a.name = std::move(kernel);
  a.statement = statement;
  return a;
}

Anchor Anchor::store(std::string kernel, size_t statement) {
  Anchor a;
  a.kind = Kind::kStore;
  a.name = std::move(kernel);
  a.statement = statement;
  return a;
}

Anchor Anchor::site(std::string description, int line) {
  Anchor a;
  a.kind = Kind::kSite;
  a.name = std::move(description);
  a.line = line;
  return a;
}

std::string Anchor::to_string() const {
  std::string out;
  switch (kind) {
    case Kind::kNone:
      return out;
    case Kind::kField:
      out = "field '" + name + "'";
      break;
    case Kind::kKernel:
      out = "kernel '" + name + "'";
      break;
    case Kind::kFetch:
      out = "kernel '" + name + "' fetch #" + std::to_string(statement);
      break;
    case Kind::kStore:
      out = "kernel '" + name + "' store #" + std::to_string(statement);
      break;
    case Kind::kSite:
      out = name;  // already a rendered description
      break;
  }
  if (line > 0) out += " (line " + std::to_string(line) + ")";
  return out;
}

std::string Diagnostic::to_string() const {
  std::string out = std::string(analysis::to_string(severity)) + " " + code;
  const std::string at = primary.to_string();
  if (!at.empty()) out += " at " + at;
  const std::string vs = secondary.to_string();
  if (!vs.empty()) out += " (vs " + vs + ")";
  out += ": " + message;
  return out;
}

namespace {

const char* anchor_kind_name(Anchor::Kind kind) {
  switch (kind) {
    case Anchor::Kind::kNone: return "none";
    case Anchor::Kind::kField: return "field";
    case Anchor::Kind::kKernel: return "kernel";
    case Anchor::Kind::kFetch: return "fetch";
    case Anchor::Kind::kStore: return "store";
    case Anchor::Kind::kSite: return "site";
  }
  return "none";
}

void append_anchor_json(std::ostringstream& os, const Anchor& anchor) {
  os << "{\"kind\":\"" << anchor_kind_name(anchor.kind) << "\"";
  if (anchor.kind != Anchor::Kind::kNone) {
    os << ",\"name\":\"" << json_escape(anchor.name) << "\"";
    if (anchor.kind == Anchor::Kind::kFetch ||
        anchor.kind == Anchor::Kind::kStore) {
      os << ",\"statement\":" << anchor.statement;
    }
    if (anchor.line > 0) os << ",\"line\":" << anchor.line;
  }
  os << "}";
}

}  // namespace

std::string Diagnostic::to_json() const {
  std::ostringstream os;
  os << "{\"code\":\"" << json_escape(code) << "\",\"severity\":\""
     << analysis::to_string(severity) << "\",\"message\":\""
     << json_escape(message) << "\",\"primary\":";
  append_anchor_json(os, primary);
  if (secondary.kind != Anchor::Kind::kNone) {
    os << ",\"secondary\":";
    append_anchor_json(os, secondary);
  }
  os << "}";
  return os.str();
}

size_t LintReport::error_count() const {
  size_t n = 0;
  for (const Diagnostic& d : diagnostics) {
    if (d.severity == Severity::kError) ++n;
  }
  return n;
}

size_t LintReport::warning_count() const {
  size_t n = 0;
  for (const Diagnostic& d : diagnostics) {
    if (d.severity == Severity::kWarning) ++n;
  }
  return n;
}

size_t LintReport::info_count() const {
  size_t n = 0;
  for (const Diagnostic& d : diagnostics) {
    if (d.severity == Severity::kInfo) ++n;
  }
  return n;
}

size_t LintReport::count(std::string_view code) const {
  size_t n = 0;
  for (const Diagnostic& d : diagnostics) {
    if (d.code == code) ++n;
  }
  return n;
}

const Diagnostic* LintReport::find(std::string_view code) const {
  for (const Diagnostic& d : diagnostics) {
    if (d.code == code) return &d;
  }
  return nullptr;
}

std::string LintReport::to_text() const {
  if (diagnostics.empty()) return "";
  std::string out;
  for (const Diagnostic& d : diagnostics) {
    out += d.to_string();
    out += '\n';
  }
  out += std::to_string(error_count()) + " error(s), " +
         std::to_string(warning_count()) + " warning(s)";
  if (info_count() > 0) {
    out += ", " + std::to_string(info_count()) + " info";
  }
  out += '\n';
  return out;
}

std::string LintReport::to_json() const {
  std::ostringstream os;
  os << "{\"diagnostics\":[";
  for (size_t i = 0; i < diagnostics.size(); ++i) {
    if (i > 0) os << ",";
    os << diagnostics[i].to_json();
  }
  os << "],\"errors\":" << error_count()
     << ",\"warnings\":" << warning_count()
     << ",\"infos\":" << info_count() << "}";
  return os.str();
}

}  // namespace p2g::analysis
