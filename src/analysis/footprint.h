// Symbolic footprints: which elements of a field a fetch/store statement
// may touch, expressed per dimension as a strided interval whose upper
// bound may be a concrete integer, the (statically unknown) runtime extent
// of a field dimension, or unbounded.
//
// The dependence pass (dependence.h) builds footprints from SliceSpecs and
// compares them with the conservative may_overlap / contains predicates
// below: may_overlap never returns false for a pair that can actually
// collide, and contains never returns true unless containment holds for
// every admissible extent valuation. Both treat a symbolic extent as an
// opaque non-negative unknown — two different extent symbols are never
// assumed equal, the same symbol always is.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/ids.h"

namespace p2g::analysis {

/// Upper bound of a dimension footprint.
struct SymBound {
  enum class Kind { kFinite, kExtent, kUnbounded };

  Kind kind = Kind::kFinite;
  int64_t value = 0;             ///< kFinite
  FieldId field = kInvalidField; ///< kExtent: |field.dim|
  size_t dim = 0;                ///< kExtent

  static SymBound finite(int64_t v) {
    SymBound b;
    b.value = v;
    return b;
  }
  static SymBound extent(FieldId field, size_t dim) {
    SymBound b;
    b.kind = Kind::kExtent;
    b.field = field;
    b.dim = dim;
    return b;
  }
  static SymBound unbounded() {
    SymBound b;
    b.kind = Kind::kUnbounded;
    return b;
  }

  bool is_finite() const { return kind == Kind::kFinite; }

  /// "8", "|f3.1|" (extent of dimension 1 of field id 3), "inf".
  std::string to_string() const;

  bool operator==(const SymBound&) const = default;
};

/// Strided interval of one dimension: {lo + k*step | k >= 0} ∩ [lo, hi).
/// Always normalized: step >= 1, and an empty set is canonically
/// {lo=0, hi=finite 0, step=1}.
struct DimFootprint {
  int64_t lo = 0;
  SymBound hi = SymBound::finite(0);
  int64_t step = 1;

  static DimFootprint point(int64_t at) {
    return DimFootprint{at, SymBound::finite(at + 1), 1};
  }
  static DimFootprint range(int64_t lo, SymBound hi, int64_t step = 1);
  /// The full dimension [0, |field.dim|).
  static DimFootprint full(FieldId field, size_t dim) {
    return DimFootprint{0, SymBound::extent(field, dim), 1};
  }
  static DimFootprint empty() { return DimFootprint{}; }

  /// Provably empty. A symbolic upper bound may be 0 at runtime, but that
  /// is not *provable* emptiness, so only finite hi <= lo qualifies.
  bool is_empty() const { return hi.is_finite() && hi.value <= lo; }
  bool is_point() const { return hi.is_finite() && hi.value == lo + 1; }

  /// "5" (point), "[2,11):2" (strided), "[0,|f1.0|)" (symbolic).
  std::string to_string() const;

  bool operator==(const DimFootprint&) const = default;
};

/// Builds a normalized footprint from a python-range-like (start, stop,
/// step) triple; step < 0 walks downward (stop exclusive), step must be
/// non-zero. normalize(10, 0, -2) = {2,4,6,8,10} = [2,11):2.
DimFootprint normalize(int64_t start, int64_t stop, int64_t step);

/// May the two sets share an element under some extent valuation?
bool may_overlap(const DimFootprint& a, const DimFootprint& b);

/// Does `outer` contain `inner` under every extent valuation?
bool contains(const DimFootprint& outer, const DimFootprint& inner);

/// Footprint of one statement over one field: either the whole field
/// (whatever its extents turn out to be) or one DimFootprint per dimension.
struct Footprint {
  FieldId field = kInvalidField;
  bool whole = false;
  std::vector<DimFootprint> dims;  ///< empty when whole

  static Footprint whole_field(FieldId field) {
    Footprint f;
    f.field = field;
    f.whole = true;
    return f;
  }

  bool is_empty() const;
  /// "whole" or "[x∈...][*]"-style per-dim rendering.
  std::string to_string() const;

  bool operator==(const Footprint&) const = default;
};

bool may_overlap(const Footprint& a, const Footprint& b);
bool contains(const Footprint& outer, const Footprint& inner);

}  // namespace p2g::analysis
