// Symbolic dependence & footprint analysis over a compiled kernel graph
// (the p2gdep pass).
//
// For every fetch/store statement the pass builds a symbolic footprint
// (footprint.h) of the elements it may touch, classifies its access
// pattern, and derives producer -> consumer dependence edges with age
// distances and per-dimension element distances. Three consumers:
//
//  1. Lint diagnostics: P2G-W008 (slice out of declared bounds) and
//     P2G-W009 (dead store) are real findings wired into lint();
//     P2G-W010 (fusion legality) and P2G-W011 (per-age footprint bound)
//     are kInfo reports emitted only through this pass.
//  2. Independence certificates (core/program.h): statically proven
//     (field, consumer fetch) independence facts the DependencyAnalyzer
//     uses to skip fine-grained region checks (RunOptions::use_certificates).
//  3. The p2gdep CLI (tools/p2gdep.cpp): text and JSON renderings.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "analysis/diagnostic.h"
#include "analysis/footprint.h"
#include "core/program.h"

namespace p2g::analysis {

/// Access-pattern classification of one fetch/store statement, primarily by
/// slice shape:
///  - elementwise slices are kPointwise; an elementwise *fetch* of a field
///    the kernel also fetches elementwise at other relative age offsets
///    becomes kStencil (a temporal stencil; radius = max - min offset);
///  - slices mixing index variables with all() tails are kStream (row /
///    column / block streaming, e.g. frame(a)[by][bx][*]);
///  - whole-field fetches are kReduction at relative ages (each instance
///    consumes an entire age) and kBroadcast at constant ages (one fixed
///    datum shared by every age); whole-field stores are kBroadcast (one
///    statement produces the age's entire content).
enum class AccessPattern {
  kPointwise,
  kStencil,
  kStream,
  kReduction,
  kBroadcast,
  kOpaque,
};

std::string_view to_string(AccessPattern pattern);

/// One analyzed fetch/store statement.
struct AccessInfo {
  KernelId kernel = kInvalidKernel;
  std::string kernel_name;
  bool is_fetch = true;
  size_t statement = 0;  ///< index into the kernel's fetches/stores
  FieldId field = kInvalidField;
  std::string field_name;
  AccessPattern pattern = AccessPattern::kOpaque;
  int64_t stencil_radius = 0;  ///< kStencil only: max - min age offset
  Footprint footprint;
  std::string text;  ///< "fetch frame(a)[by][bx][*]"
};

/// One producer -> consumer dependence edge through a field. Edges exist
/// only where the statements' concrete-age sets can intersect and their
/// footprints may overlap.
struct DependenceEdge {
  FieldId field = kInvalidField;
  std::string field_name;
  KernelId producer = kInvalidKernel;
  std::string producer_name;
  size_t store = 0;
  KernelId consumer = kInvalidKernel;
  std::string consumer_name;
  size_t fetch = 0;
  /// store age offset - fetch age offset when both are relative (ages of
  /// slack the edge grants per aging turn); 0 for matching constant ages;
  /// nullopt when one side is constant and the other relative (the
  /// distance varies with the instance age).
  std::optional<int64_t> age_distance;
  /// Per-dimension element distance: "0" (aligned), a signed delta, or
  /// "*" (unknown). Empty when either side is a whole-field access.
  std::vector<std::string> elem_distance;
  /// Mirrors Runtime::fuse legality for the (producer, consumer) kernel
  /// pair over this field; `blocker` names the first violated requirement.
  bool fusible = false;
  std::string blocker;
};

/// Per-age memory footprint bound of one field (union of its producers'
/// store footprints at a single age).
struct FieldBound {
  FieldId field = kInvalidField;
  std::string field_name;
  /// Element-count expression, e.g. "8", "8*|frame.1|", "|coeffs.0|*64".
  std::string elements;
  /// Concrete byte bound when every factor is statically known.
  std::optional<int64_t> bytes;
};

/// Result of the dependence pass.
struct DependenceReport {
  std::vector<AccessInfo> accesses;
  std::vector<DependenceEdge> edges;
  std::vector<FieldBound> bounds;
  std::vector<IndependenceCertificate> certificates;
  /// Full lint report (including W008/W009) plus the kInfo reports
  /// W010 (fusion legality, one per connected kernel pair and field) and
  /// W011 (one per bounded field).
  LintReport diagnostics;

  std::string to_text() const;
  std::string to_json() const;
};

/// Runs the full pass: footprints, patterns, edges, bounds, certificates,
/// diagnostics. Certificates are derived only when the lint report carries
/// no errors (a program that fails validation gets an empty certificate
/// set).
DependenceReport analyze_dependences(const Program& program);

/// P2G-W008: constant slice indices outside a field's *declared* extents
/// (FieldDecl::declared_extents). Called from lint(); negative constants
/// are W004's finding and excluded here.
void check_oob_slices(const Program& program, LintReport& report);

/// P2G-W009: a feasible store no feasible fetch can ever read — the
/// concrete-age sets never intersect or the footprints are disjoint.
/// Fields without any feasible consumer are skipped (terminal outputs are
/// host-drained; infeasible consumers are root-caused as W002/W006).
void check_dead_stores(const Program& program,
                       const std::vector<Age>& first_feasible,
                       LintReport& report);

}  // namespace p2g::analysis
