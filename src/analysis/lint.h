// p2g-lint: static analysis over built Programs.
//
// P2G's determinism rests on two properties the builder cannot check
// statement-locally: write-once per (field, age, element), and cyclic
// dependency graphs being unrollable through aging. p2g-lint verifies both
// symbolically from the fetch/store declarations alone:
//
//   P2G-W001  write-once conflict: two store statements (or two index
//             instances of one statement) may write overlapping slices of
//             the same field at the same concrete age.
//   P2G-W002  fetch of a field no kernel ever stores.
//   P2G-W003  dependency cycle with zero (or negative) net aging — aging
//             can never unroll it, so it is a guaranteed deadlock.
//   P2G-W004  constant age/index that is out of bounds or provably never
//             written by any producer.
//   P2G-W005  field that is never stored nor fetched (warning).
//   P2G-W006  kernel whose fetches can never all be satisfied (warning).
//
// The age analysis is interval-based: a constant-age statement touches
// exactly {v}; a relative statement of a kernel whose first feasible age is
// f (DependencyAnalyzer::first_feasible_ages) touches [f + offset, inf).
// Slice overlap uses a per-dimension lattice where a constant dimension is
// a point and variable/all dimensions are the full extent, so two slices
// are reported only when they *may* overlap in every dimension. Both
// directions are conservative in opposite ways on purpose: every reported
// W001 describes a pair that can collide under some extent, and partitions
// separated by distinct constants are never reported.
//
// Entry points: lint() here, Program::validate(), lint_source() in
// lang_lint.h (adds source line numbers), and the p2glint CLI in tools/.
#pragma once

#include "analysis/diagnostic.h"
#include "core/program.h"

namespace p2g::analysis {

struct LintOptions {
  /// Emit the warning-severity checks (P2G-W005 unused field, P2G-W006
  /// unreachable kernel). Errors are always emitted.
  bool warn_unused = true;
};

/// Runs every static check over a built program. Never throws on findings;
/// inspect LintReport::has_errors().
LintReport lint(const Program& program, const LintOptions& options = {});

}  // namespace p2g::analysis
