// A simulated P2G execution node (paper Fig. 1).
//
// Each node owns a full Runtime but only *enables* the kernels of its
// partition. Stores produced locally on fields that remote kernels consume
// are serialized and forwarded over the message bus; incoming remote
// stores are injected into local field storage, feeding the local
// dependency analyzer exactly like a local store. Every node also reports
// its local topology to the master.
#pragma once

#include <atomic>
#include <map>
#include <memory>
#include <optional>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "core/program.h"
#include "core/runtime.h"
#include "dist/bus.h"
#include "graph/topology.h"

namespace p2g::dist {

class ExecutionNode {
 public:
  /// `kernel_owner` maps every kernel name to the name of the node that
  /// runs it (the master's partitioning decision).
  ExecutionNode(std::string name, Program program,
                const std::map<std::string, std::string>& kernel_owner,
                MessageBus& bus, RunOptions base_options);

  /// Registers on the bus and reports the local topology to the master.
  void announce(const std::string& master_endpoint);

  /// Starts the runtime and the mailbox receiver threads.
  void start();

  /// Waits for both threads (after the master broadcast a shutdown). When
  /// the runtime collected metrics, ships a kMetricsReport snapshot to the
  /// master endpoint before closing the mailbox.
  void join();

  const std::string& name() const { return name_; }
  Runtime& runtime() { return *runtime_; }

  bool idle() const;
  int64_t stores_sent() const { return stores_sent_.load(); }
  int64_t stores_received() const { return stores_received_.load(); }
  bool mailbox_empty() const { return mailbox_->empty(); }

  /// The node's run report (valid after join()).
  const std::optional<RunReport>& report() const { return report_; }

 private:
  void receiver_loop();
  void forward_store(const StoreEvent& event);

  std::string name_;
  std::string master_endpoint_;  ///< set by announce()
  MessageBus& bus_;
  std::shared_ptr<MessageBus::Mailbox> mailbox_;
  std::unique_ptr<Runtime> runtime_;

  /// field id -> remote node names that host consumers of the field.
  std::vector<std::vector<std::string>> forward_targets_;

  std::atomic<int64_t> stores_sent_{0};
  std::atomic<int64_t> stores_received_{0};

  std::thread runtime_thread_;
  std::thread receiver_thread_;
  std::optional<RunReport> report_;
  std::exception_ptr error_;
};

}  // namespace p2g::dist
