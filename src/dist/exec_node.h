// A simulated P2G execution node (paper Fig. 1).
//
// Each node owns a full Runtime but only *enables* the kernels of its
// partition. Stores produced locally on fields that remote kernels consume
// are serialized and forwarded over the message bus; incoming remote
// stores are injected into local field storage, feeding the local
// dependency analyzer exactly like a local store. Every node also reports
// its local topology to the master.
//
// Fault-tolerant mode (NodeFtOptions::enabled) layers the src/ft subsystem
// on top: store forwards travel through a ReliableChannel (seqnos, acks,
// retransmits), incoming stores apply idempotently (fill mode), a
// heartbeat thread beats to the master and periodically ships checkpoints
// of complete locally-produced (field, age) payloads, and kReassign
// messages from the master re-point the forwarding map and re-enable the
// kernels this node inherits from a dead peer.
#pragma once

#include <atomic>
#include <condition_variable>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <set>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "core/program.h"
#include "core/runtime.h"
#include "dist/bus.h"
#include "ft/reliable.h"
#include "graph/topology.h"
#include "nd/view.h"

namespace p2g::dist {

/// Per-node fault-tolerance configuration (mirrors the master's FtOptions).
struct NodeFtOptions {
  bool enabled = false;
  /// Heartbeat period toward the master.
  int64_t heartbeat_period_ms = 15;
  /// Ship checkpoints every N beats (0 disables checkpoint shipping).
  int checkpoint_every_beats = 4;
  /// Reliable-channel tuning (retransmission timers, jitter seed).
  ft::ReliableChannel::Options channel;
};

/// Out-of-band data plane hook (the shared-memory lane of src/net). When
/// installed, forward_store offers every outgoing store to the forwarder
/// first; a `true` return means the store is on its way to `target` and
/// the serialized message path is skipped for that target.
class StoreForwarder {
 public:
  virtual ~StoreForwarder() = default;
  virtual bool forward(const StoreEvent& event, const std::string& target) = 0;
};

class ExecutionNode {
 public:
  /// `kernel_owner` maps every kernel name to the name of the node that
  /// runs it (the master's partitioning decision).
  ExecutionNode(std::string name, Program program,
                const std::map<std::string, std::string>& kernel_owner,
                net::Transport& bus, RunOptions base_options,
                NodeFtOptions ft = {});

  /// Registers on the bus and reports the local topology to the master.
  void announce(const std::string& master_endpoint);

  /// Starts the runtime and the mailbox receiver threads (and, in FT mode,
  /// the heartbeat thread).
  void start();

  /// Waits for both threads (after the master broadcast a shutdown). When
  /// the runtime collected metrics, ships a kMetricsReport snapshot to the
  /// master endpoint before closing the mailbox. Crashed nodes neither
  /// ship metrics nor rethrow their error.
  void join();

  /// Simulates a crash: stops the runtime and silences the heartbeat.
  /// Flag-only and idempotent — it may be invoked from the crashing node's
  /// own send path (a ChaosBus crash trigger), so it must never join
  /// threads. The master fences the node via MessageBus::mark_dead.
  void crash();

  const std::string& name() const { return name_; }
  Runtime& runtime() { return *runtime_; }

  bool idle() const;
  bool crashed() const { return crashed_.load(); }
  int64_t stores_sent() const { return stores_sent_.load(); }
  int64_t stores_received() const { return stores_received_.load(); }
  bool mailbox_empty() const { return mailbox_->empty(); }

  /// Reliable-channel backlog (0 when FT is off). Termination detection:
  /// quiescence requires every alive node's channel drained.
  int64_t channel_unacked() const;
  ft::ReliableChannel::Stats channel_stats() const;

  /// Installs a data-plane forwarder (see StoreForwarder). Must be called
  /// before start(); non-FT mode only — the reliable channel owns the FT
  /// data plane. The forwarder must outlive the node.
  void set_store_forwarder(StoreForwarder* forwarder);

  /// Fields that have at least one remote consumer (the set forward_store
  /// ships). A shared-memory data plane arena-backs exactly these.
  std::vector<FieldId> forwarded_fields() const;

  /// Applies a store that arrived over an out-of-band data plane: the
  /// counterpart of apply_remote_store for payloads that are already
  /// mapped into this process. Sets *adopted to true when the storage
  /// aliased the view's pages instead of copying.
  void apply_plane_store(FieldId field, Age age, const nd::Region& region,
                         KernelId producer, uint32_t store_decl, bool whole,
                         const nd::ConstView& view, bool* adopted);

  /// The node's run report (valid after join(); empty for crashed nodes).
  const std::optional<RunReport>& report() const { return report_; }

  /// The flight-recorder dump artifact written by crash() (set only when
  /// the node crashed with a flight recorder and flight_dir configured).
  const std::optional<std::string>& flight_dump() const {
    return flight_dump_path_;
  }

 private:
  void receiver_loop();
  void heartbeat_loop();
  void ship_checkpoints();
  /// Ships a kMetricsReport snapshot of the node registry (plus the
  /// reliable-channel counters) to the master. Called periodically from
  /// the heartbeat loop and once more at join().
  void ship_metrics();
  /// Wire-send span bracket around one traced store forward: fresh span
  /// id before the send, span + flow endpoints after it. Returns the zero
  /// context when tracing is off or the store untraced.
  TraceContext begin_wire_span(const StoreEvent& event, int64_t* t0);
  void end_wire_span(const StoreEvent& event, const TraceContext& wire,
                     const std::string& target, int64_t t0);
  /// Encodes the RemoteStore wire payload for one store event (fetches the
  /// freshly written bytes back out of local storage).
  std::vector<uint8_t> encode_store_payload(const StoreEvent& event);
  void forward_store(const StoreEvent& event);
  void apply_remote_store(const Message& message);
  void apply_reassign(const ReassignMsg& reassign);

  std::string name_;
  std::string master_endpoint_;  ///< set by announce()
  net::Transport& bus_;
  std::shared_ptr<net::Transport::Mailbox> mailbox_;
  std::unique_ptr<Runtime> runtime_;
  StoreForwarder* forwarder_ = nullptr;  ///< optional data plane

  NodeFtOptions ft_;
  std::unique_ptr<ft::ReliableChannel> channel_;  ///< FT mode only

  /// Guards the forwarding map, the ownership map and the store log, so a
  /// reassignment replays the log and flips the targets atomically with
  /// respect to concurrent forwards — every store reaches every current
  /// target exactly once (idempotent applies absorb the overlap anyway).
  std::mutex forward_mutex_;
  /// field id -> remote node names that host consumers of the field.
  std::vector<std::vector<std::string>> forward_targets_;
  std::map<std::string, std::string> kernel_owner_;
  /// Every forwarded payload, for replay to targets added by failover.
  std::vector<std::pair<FieldId, std::vector<uint8_t>>> store_log_;

  /// (field, age) checkpoints already shipped (heartbeat thread only).
  std::set<std::pair<FieldId, Age>> checkpointed_;

  std::atomic<int64_t> stores_sent_{0};
  std::atomic<int64_t> stores_received_{0};
  std::atomic<bool> crashed_{false};

  std::mutex hb_mutex_;
  std::condition_variable hb_cv_;
  bool hb_stop_ = false;

  std::thread runtime_thread_;
  std::thread receiver_thread_;
  std::thread heartbeat_thread_;
  std::optional<RunReport> report_;
  std::optional<std::string> flight_dump_path_;  ///< written by crash()
  std::exception_ptr error_;
};

}  // namespace p2g::dist
