// Cluster message types (paper §IV: topology reports, partition
// assignment, data distribution via publish-subscribe, profiling feedback).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/events.h"
#include "core/instrumentation.h"
#include "core/trace.h"
#include "dist/serialize.h"
#include "graph/topology.h"
#include "nd/region.h"
#include "obs/metrics.h"

namespace p2g::dist {

enum class MessageType : uint8_t {
  kTopologyReport = 1,  ///< execution node -> master: local topology
  kRemoteStore = 2,     ///< node -> node: a store crossing the partition
  kProfileReport = 3,   ///< node -> master: instrumentation snapshot
  kIdleReport = 4,      ///< node -> master: quiescence probe answer
  kShutdown = 5,        ///< master -> nodes: stop
  kMetricsReport = 6,   ///< node -> master: telemetry registry snapshot

  // Fault-tolerance layer (src/ft).
  kData = 7,        ///< node -> node: reliable-channel envelope (DataEnvelope)
  kAck = 8,         ///< node -> node: cumulative ack (AckMsg)
  kHeartbeat = 9,   ///< node -> master: liveness beat (HeartbeatMsg)
  kReassign = 10,   ///< master -> nodes: failover ownership change
  kCheckpoint = 11, ///< node -> master: sealed-age snapshot (RemoteStore)

  // Out-of-process cluster protocol (src/net). The supervisor process is
  // addressed as "master"; nodes are real OS processes behind a socket.
  kHello = 12,      ///< node -> hub: identify this connection (HelloMsg)
  kAssign = 13,     ///< supervisor -> node: kernel ownership (AssignMsg)
  kIdleProbe = 14,  ///< supervisor -> nodes: quiescence probe (empty payload)
  kCapture = 15,    ///< node -> supervisor: captured field age (CaptureMsg)
  kNodeDone = 16,   ///< node -> supervisor: final status (NodeDoneMsg)
};

struct Message {
  MessageType type = MessageType::kShutdown;
  std::string from;
  std::vector<uint8_t> payload;

  // In-process delivery metadata, mirrored out of the kData envelope by the
  // reliable channel so the chaos layer can reach fault verdicts without
  // decoding payloads. Zero on messages outside the reliable data plane.
  uint64_t seq = 0;      ///< per-(sender, destination) sequence number
  uint32_t attempt = 0;  ///< 1 = first transmission, >1 = retransmission

  // Causal trace context, mirrored out of the kData envelope (or stamped
  // directly on non-FT kRemoteStore forwards). `trace.span_id` is the
  // sending wire span — the causal parent of whatever the receiver does
  // with the payload. Zero when tracing is off or the data has no cause
  // (checkpoint restores).
  TraceContext trace;
};

/// A store forwarded across the partition boundary. Carries everything the
/// remote dependency analyzer needs for seal bookkeeping.
struct RemoteStore {
  int32_t field = -1;
  int64_t age = 0;
  nd::Region region;
  int32_t producer = -1;
  uint32_t store_decl = 0;
  bool whole = false;
  std::vector<uint8_t> payload;  ///< densely packed region elements

  std::vector<uint8_t> encode() const;
  static RemoteStore decode(const std::vector<uint8_t>& bytes);
};

/// An execution node's topology report.
struct TopologyReport {
  graph::NodeTopology topology;

  std::vector<uint8_t> encode() const;
  static TopologyReport decode(const std::vector<uint8_t>& bytes);
};

/// Instrumentation snapshot (for HLS reweighting / repartitioning).
struct ProfileReport {
  InstrumentationReport report;

  std::vector<uint8_t> encode() const;
  static ProfileReport decode(const std::vector<uint8_t>& bytes);
};

/// A node's full telemetry snapshot (counters, gauges, histograms, sampled
/// time series), shipped to the master after the node's runtime drained.
/// The master aggregates these into DistributedRunReport — the data side
/// of the paper's "instrumentation feeds the high-level scheduler" loop.
struct MetricsReport {
  std::string node;
  obs::MetricsSnapshot snapshot;

  std::vector<uint8_t> encode() const;
  static MetricsReport decode(const std::vector<uint8_t>& bytes);
};

/// Reliable-channel envelope: one data-plane message with its per-link
/// sequence number and the sender's causal trace context. The inner
/// message (currently always a RemoteStore) rides as opaque bytes so the
/// channel needs no knowledge of payloads.
///
/// Wire layout (ISSUE 6 revision): seq, trace_id, parent_span, inner_type,
/// inner blob. The two trace words sit *before* the type byte, so a
/// pre-revision envelope (8 + 1 + 4 bytes minimum) is always shorter than
/// the new minimum (29 bytes) and decoding it throws kProtocol instead of
/// silently misreading.
struct DataEnvelope {
  uint64_t seq = 0;
  uint64_t trace_id = 0;     ///< frame id (0 = untraced)
  uint64_t parent_span = 0;  ///< sending wire span (0 = untraced)
  MessageType inner_type = MessageType::kRemoteStore;
  std::vector<uint8_t> inner;

  std::vector<uint8_t> encode() const;
  static DataEnvelope decode(const std::vector<uint8_t>& bytes);
};

/// Cumulative acknowledgement: every data message up to and including
/// `cumulative` on the (sender -> acker) link has been delivered in order.
struct AckMsg {
  uint64_t cumulative = 0;

  std::vector<uint8_t> encode() const;
  static AckMsg decode(const std::vector<uint8_t>& bytes);
};

/// Liveness beat, node -> master. `sent_ns` feeds the phi-style detector's
/// inter-arrival statistics.
struct HeartbeatMsg {
  int64_t seq = 0;
  int64_t sent_ns = 0;

  std::vector<uint8_t> encode() const;
  static HeartbeatMsg decode(const std::vector<uint8_t>& bytes);
};

/// Failover directive, master -> every surviving node: `dead` has been
/// declared failed and each listed kernel moves to its new owner. Receivers
/// rebuild forwarding maps, enable newly owned kernels for deterministic
/// re-execution, and replay already-committed stores to the new consumers.
struct ReassignMsg {
  std::string dead;
  std::vector<std::pair<std::string, std::string>> kernels;  ///< name->owner

  std::vector<uint8_t> encode() const;
  static ReassignMsg decode(const std::vector<uint8_t>& bytes);
};

/// Quiescence probe answer used by the master's termination detection.
struct IdleReport {
  bool idle = false;
  int64_t stores_sent = 0;      ///< remote stores this node has sent
  int64_t stores_received = 0;  ///< remote stores it has applied

  std::vector<uint8_t> encode() const;
  static IdleReport decode(const std::vector<uint8_t>& bytes);
};

}  // namespace p2g::dist
