// Cluster message types (paper §IV: topology reports, partition
// assignment, data distribution via publish-subscribe, profiling feedback).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/events.h"
#include "core/instrumentation.h"
#include "dist/serialize.h"
#include "graph/topology.h"
#include "nd/region.h"
#include "obs/metrics.h"

namespace p2g::dist {

enum class MessageType : uint8_t {
  kTopologyReport = 1,  ///< execution node -> master: local topology
  kRemoteStore = 2,     ///< node -> node: a store crossing the partition
  kProfileReport = 3,   ///< node -> master: instrumentation snapshot
  kIdleReport = 4,      ///< node -> master: quiescence probe answer
  kShutdown = 5,        ///< master -> nodes: stop
  kMetricsReport = 6,   ///< node -> master: telemetry registry snapshot
};

struct Message {
  MessageType type = MessageType::kShutdown;
  std::string from;
  std::vector<uint8_t> payload;
};

/// A store forwarded across the partition boundary. Carries everything the
/// remote dependency analyzer needs for seal bookkeeping.
struct RemoteStore {
  int32_t field = -1;
  int64_t age = 0;
  nd::Region region;
  int32_t producer = -1;
  uint32_t store_decl = 0;
  bool whole = false;
  std::vector<uint8_t> payload;  ///< densely packed region elements

  std::vector<uint8_t> encode() const;
  static RemoteStore decode(const std::vector<uint8_t>& bytes);
};

/// An execution node's topology report.
struct TopologyReport {
  graph::NodeTopology topology;

  std::vector<uint8_t> encode() const;
  static TopologyReport decode(const std::vector<uint8_t>& bytes);
};

/// Instrumentation snapshot (for HLS reweighting / repartitioning).
struct ProfileReport {
  InstrumentationReport report;

  std::vector<uint8_t> encode() const;
  static ProfileReport decode(const std::vector<uint8_t>& bytes);
};

/// A node's full telemetry snapshot (counters, gauges, histograms, sampled
/// time series), shipped to the master after the node's runtime drained.
/// The master aggregates these into DistributedRunReport — the data side
/// of the paper's "instrumentation feeds the high-level scheduler" loop.
struct MetricsReport {
  std::string node;
  obs::MetricsSnapshot snapshot;

  std::vector<uint8_t> encode() const;
  static MetricsReport decode(const std::vector<uint8_t>& bytes);
};

/// Quiescence probe answer used by the master's termination detection.
struct IdleReport {
  bool idle = false;
  int64_t stores_sent = 0;      ///< remote stores this node has sent
  int64_t stores_received = 0;  ///< remote stores it has applied

  std::vector<uint8_t> encode() const;
  static IdleReport decode(const std::vector<uint8_t>& bytes);
};

}  // namespace p2g::dist
