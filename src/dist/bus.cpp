#include "dist/bus.h"

#include "common/error.h"

namespace p2g::dist {

std::shared_ptr<MessageBus::Mailbox> MessageBus::register_endpoint(
    const std::string& name) {
  std::scoped_lock lock(mutex_);
  check_argument(!endpoints_.count(name),
                 "endpoint '" + name + "' already registered");
  auto mailbox = std::make_shared<Mailbox>();
  endpoints_.emplace(name, mailbox);
  return mailbox;
}

void MessageBus::send(const std::string& to, Message message) {
  std::shared_ptr<Mailbox> mailbox;
  {
    std::scoped_lock lock(mutex_);
    const auto it = endpoints_.find(to);
    if (it == endpoints_.end()) {
      throw_error(ErrorKind::kProtocol, "unknown endpoint '" + to + "'");
    }
    mailbox = it->second;
    const auto size = static_cast<int64_t>(message.payload.size());
    ++stats_.delivered;
    stats_.bytes += size;
    EndpointStats& ep = stats_.per_endpoint[to];
    ++ep.messages;
    ep.bytes += size;
  }
  mailbox->push(std::move(message));
}

void MessageBus::broadcast(Message message) {
  std::scoped_lock lock(mutex_);
  const auto size = static_cast<int64_t>(message.payload.size());
  for (auto& [name, mailbox] : endpoints_) {
    if (name == message.from) continue;
    ++stats_.delivered;
    stats_.bytes += size;
    EndpointStats& ep = stats_.per_endpoint[name];
    ++ep.messages;
    ep.bytes += size;
    mailbox->push(message);
  }
}

void MessageBus::close_all() {
  std::scoped_lock lock(mutex_);
  for (auto& [name, mailbox] : endpoints_) {
    mailbox->close();
  }
}

int64_t MessageBus::delivered() const {
  std::scoped_lock lock(mutex_);
  return stats_.delivered;
}

BusStats MessageBus::stats() const {
  std::scoped_lock lock(mutex_);
  return stats_;
}

}  // namespace p2g::dist
