#include "dist/bus.h"

#include <vector>

#include "check/sync.h"
#include "common/error.h"

namespace p2g::dist {

std::shared_ptr<MessageBus::Mailbox> MessageBus::register_endpoint(
    const std::string& name) {
  std::scoped_lock lock(mutex_);
  check_argument(!endpoints_.count(name),
                 "endpoint '" + name + "' already registered");
  auto mailbox = std::make_shared<Mailbox>();
  endpoints_.emplace(name, mailbox);
  return mailbox;
}

SendStatus MessageBus::deliver(const std::string& to, Message message) {
  std::shared_ptr<Mailbox> mailbox;
  {
    std::scoped_lock lock(mutex_);
    const auto it = endpoints_.find(to);
    if (it == endpoints_.end()) {
      throw_error(ErrorKind::kProtocol, "unknown endpoint '" + to + "'");
    }
    check::read(closed_, "MessageBus.closed");
    if (closed_) {
      ++stats_.dead_letters;
      ++stats_.per_endpoint[to].dead_letters;
      return SendStatus::kClosed;
    }
    if (dead_.count(to)) {
      ++stats_.dead_letters;
      ++stats_.per_endpoint[to].dead_letters;
      return SendStatus::kDead;
    }
    mailbox = it->second;
    const auto size = static_cast<int64_t>(message.payload.size());
    ++stats_.delivered;
    stats_.bytes += size;
    EndpointStats& ep = stats_.per_endpoint[to];
    ++ep.messages;
    ep.bytes += size;
  }
  mailbox->push(std::move(message));
  return SendStatus::kDelivered;
}

SendStatus MessageBus::send(const std::string& to, Message message) {
  return deliver(to, std::move(message));
}

int MessageBus::broadcast(Message message) {
  std::vector<std::string> targets;
  {
    std::scoped_lock lock(mutex_);
    if (closed_) return 0;
    for (const auto& [name, mailbox] : endpoints_) {
      if (name == message.from || dead_.count(name)) continue;
      targets.push_back(name);
    }
  }
  int delivered = 0;
  for (const std::string& name : targets) {
    // An endpoint may close or die between the snapshot and the deliver;
    // that simply shows up as a failed status here.
    if (deliver(name, message) == SendStatus::kDelivered) ++delivered;
  }
  return delivered;
}

void MessageBus::close_all() {
  std::scoped_lock lock(mutex_);
  check::write(closed_, "MessageBus.closed");
  closed_ = true;
  for (auto& [name, mailbox] : endpoints_) {
    mailbox->close();
  }
}

void MessageBus::mark_dead(const std::string& name) {
  std::scoped_lock lock(mutex_);
  dead_.insert(name);
  const auto it = endpoints_.find(name);
  if (it != endpoints_.end()) it->second->close();
}

bool MessageBus::unreachable(const std::string& to) const {
  std::scoped_lock lock(mutex_);
  return closed_ || dead_.count(to) != 0;
}

bool MessageBus::is_dead(const std::string& name) const {
  std::scoped_lock lock(mutex_);
  return dead_.count(name) != 0;
}

int64_t MessageBus::delivered() const {
  std::scoped_lock lock(mutex_);
  return stats_.delivered;
}

BusStats MessageBus::stats() const {
  std::scoped_lock lock(mutex_);
  return stats_;
}

}  // namespace p2g::dist
