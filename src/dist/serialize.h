// Minimal binary serialization for cluster messages.
//
// Little-endian fixed-width scalars, length-prefixed strings/blobs. The
// simulated cluster is in-process, but every message still round-trips
// through bytes so the wire format (and its failure modes) is exercised.
#pragma once

#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

#include "common/error.h"

namespace p2g::dist {

class Writer {
 public:
  void u8(uint8_t v) { bytes_.push_back(v); }
  void u32(uint32_t v) { append(&v, sizeof(v)); }
  void i64(int64_t v) { append(&v, sizeof(v)); }
  void f64(double v) { append(&v, sizeof(v)); }

  void str(const std::string& s) {
    u32(static_cast<uint32_t>(s.size()));
    append(s.data(), s.size());
  }

  void blob(const void* data, size_t size) {
    u32(static_cast<uint32_t>(size));
    append(data, size);
  }

  std::vector<uint8_t> take() { return std::move(bytes_); }
  const std::vector<uint8_t>& bytes() const { return bytes_; }

 private:
  void append(const void* data, size_t size) {
    const auto* p = static_cast<const uint8_t*>(data);
    bytes_.insert(bytes_.end(), p, p + size);
  }
  std::vector<uint8_t> bytes_;
};

class Reader {
 public:
  Reader(const uint8_t* data, size_t size) : data_(data), size_(size) {}
  explicit Reader(const std::vector<uint8_t>& bytes)
      : Reader(bytes.data(), bytes.size()) {}

  uint8_t u8() { return *take(1); }
  uint32_t u32() { return read_as<uint32_t>(); }
  int64_t i64() { return read_as<int64_t>(); }
  double f64() { return read_as<double>(); }

  std::string str() {
    const uint32_t n = u32();
    const uint8_t* p = take(n);
    return std::string(reinterpret_cast<const char*>(p), n);
  }

  std::vector<uint8_t> blob() {
    const uint32_t n = u32();
    const uint8_t* p = take(n);
    return std::vector<uint8_t>(p, p + n);
  }

  bool exhausted() const { return pos_ >= size_; }

  /// Bytes not yet consumed.
  size_t remaining() const { return size_ - pos_; }

  /// Reads an element count and validates it against the bytes actually
  /// left: a count of n elements needing at least `min_element_bytes` each
  /// cannot exceed remaining(). Guards container reserves against corrupt
  /// or hostile length fields (a flipped bit must yield kProtocol, not a
  /// multi-gigabyte allocation).
  uint32_t count(size_t min_element_bytes) {
    const uint32_t n = u32();
    if (min_element_bytes != 0 &&
        static_cast<uint64_t>(n) * min_element_bytes > remaining()) {
      throw_error(ErrorKind::kProtocol, "truncated message");
    }
    return n;
  }

 private:
  template <typename T>
  T read_as() {
    T v;
    std::memcpy(&v, take(sizeof(T)), sizeof(T));
    return v;
  }

  const uint8_t* take(size_t n) {
    if (pos_ + n > size_) {
      throw_error(ErrorKind::kProtocol, "truncated message");
    }
    const uint8_t* p = data_ + pos_;
    pos_ += n;
    return p;
  }

  const uint8_t* data_;
  size_t size_;
  size_t pos_ = 0;
};

}  // namespace p2g::dist
