// The master node / high-level scheduler (paper §IV, Fig. 1).
//
// The master derives the final implicit static dependency graph from the
// program, partitions it (greedy + Kernighan-Lin, or tabu search), places
// the partitions on the global topology assembled from the execution
// nodes' reports, runs the simulated cluster to completion (a two-round
// quiescence+message-conservation termination detector — the distributed
// analogue of the single-node outstanding counter), and collects
// instrumentation for repartitioning.
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "core/program.h"
#include "core/runtime.h"
#include "dist/bus.h"
#include "dist/exec_node.h"
#include "graph/partition.h"
#include "graph/static_graph.h"
#include "graph/tabu.h"
#include "graph/topology.h"

namespace p2g::dist {

struct MasterOptions {
  /// Number of execution nodes to simulate.
  int nodes = 2;
  /// Worker threads per node.
  int workers_per_node = 1;
  /// Use tabu search instead of greedy+KL for the partitioning.
  bool use_tabu = false;
  /// Enable telemetry on every node and aggregate the shipped snapshots
  /// into DistributedRunReport (node_metrics / combined_metrics).
  bool collect_node_metrics = true;
  /// Extra runtime options applied to every node (schedules, caps, ...).
  RunOptions base_options;
  /// Abort if the cluster does not terminate in time.
  std::chrono::milliseconds watchdog{30000};
  /// Program factory: each node needs its own Program instance because
  /// kernel bodies may capture per-run state.
  std::function<Program()> program_factory;
};

struct DistributedRunReport {
  double wall_s = 0.0;
  bool timed_out = false;
  graph::Partition partition;
  /// Which node each partition landed on.
  std::vector<size_t> placement;
  /// Per-node instrumentation (kernels that ran elsewhere show zeroes).
  std::map<std::string, InstrumentationReport> node_reports;
  /// Merged instrumentation across the cluster.
  InstrumentationReport combined;
  /// Per-node telemetry snapshots, shipped over the bus as
  /// kMetricsReport messages (empty unless collect_node_metrics).
  std::map<std::string, obs::MetricsSnapshot> node_metrics;
  /// Cross-node reduction of node_metrics: counters/gauges summed,
  /// histograms merged bucket-wise (time series stay per node).
  obs::MetricsSnapshot combined_metrics;
  int64_t messages_delivered = 0;
  /// Interconnect traffic: messages/bytes per destination endpoint.
  BusStats bus;
  graph::GlobalTopology topology;
};

class Master {
 public:
  explicit Master(MasterOptions options);

  /// Partitions, places, runs the simulated cluster and collects profiles.
  DistributedRunReport run();

  /// HLS repartitioning input: reweights the final graph with the profile
  /// data of a finished run and partitions again (the paper repartitions
  /// to improve throughput; live task migration is future work there too).
  graph::Partition repartition(const DistributedRunReport& previous) const;

  const graph::FinalGraph& final_graph() const { return final_graph_; }

 private:
  MasterOptions options_;
  Program reference_program_;  ///< used for graph derivation only
  graph::FinalGraph final_graph_;
};

}  // namespace p2g::dist
