// The master node / high-level scheduler (paper §IV, Fig. 1).
//
// The master derives the final implicit static dependency graph from the
// program, partitions it (greedy + Kernighan-Lin, or tabu search), places
// the partitions on the global topology assembled from the execution
// nodes' reports, runs the simulated cluster to completion (a two-round
// quiescence+message-conservation termination detector — the distributed
// analogue of the single-node outstanding counter), and collects
// instrumentation for repartitioning.
//
// With MasterFtOptions::enabled the run goes through the src/ft subsystem:
// the bus becomes a seeded ChaosBus, nodes forward through reliable
// channels, and the master turns into a failure detector + recovery
// coordinator — it consumes heartbeats and checkpoints, suspects silent
// nodes (phi-accrual style), fences them off the bus, reassigns their
// kernels round-robin over the survivors, and replays retained
// checkpoints. Termination detection switches to "every alive node idle,
// channels drained, wire empty" since drops and crashes break the
// sent==received conservation law.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "core/program.h"
#include "core/runtime.h"
#include "dist/bus.h"
#include "dist/exec_node.h"
#include "ft/chaos_bus.h"
#include "ft/failure_detector.h"
#include "ft/fault_plan.h"
#include "graph/partition.h"
#include "graph/static_graph.h"
#include "graph/tabu.h"
#include "graph/topology.h"
#include "obs/causal.h"

namespace p2g::dist {

/// Fault injection + fault tolerance for a distributed run.
struct MasterFtOptions {
  bool enabled = false;
  /// Seeded chaos: per-link drop/dup/reorder/delay plus scripted crashes.
  ft::FaultPlan plan;
  /// Node heartbeat period toward the master.
  int64_t heartbeat_period_ms = 15;
  /// Nodes ship checkpoints every N beats (0 disables).
  int checkpoint_every_beats = 4;
  ft::FailureDetector::Options detector;
  ft::ReliableChannel::Options channel;
};

struct MasterOptions {
  /// Number of execution nodes to simulate.
  int nodes = 2;
  /// Worker threads per node.
  int workers_per_node = 1;
  /// Use tabu search instead of greedy+KL for the partitioning.
  bool use_tabu = false;
  /// Enable telemetry on every node and aggregate the shipped snapshots
  /// into DistributedRunReport (node_metrics / combined_metrics).
  bool collect_node_metrics = true;
  /// Extra runtime options applied to every node (schedules, caps, ...).
  RunOptions base_options;
  /// Abort if the cluster does not terminate in time.
  std::chrono::milliseconds watchdog{30000};
  /// Program factory: each node needs its own Program instance because
  /// kernel bodies may capture per-run state.
  std::function<Program()> program_factory;
  /// Fault tolerance / chaos injection (src/ft).
  MasterFtOptions ft;
  /// Field names whose final contents are gathered into
  /// DistributedRunReport::captured after the run (every complete age,
  /// merged across surviving nodes) — the bit-exactness probe used by the
  /// chaos tests.
  std::vector<std::string> capture_fields;

  // --- distributed causal tracing (ISSUE 6) --------------------------------

  /// Write one merged Chrome trace of the whole cluster here: a process
  /// lane per node plus the master control lane (recovery spans) and, for
  /// crashed nodes, their flight-recorder lanes; cross-node dependency
  /// arrows as flow events. Implies collect_trace on every node.
  std::optional<std::string> trace_path;
  /// Enable per-node flight recorders; crashed nodes dump their rings as
  /// flight_<node>.json artifacts into this directory.
  std::optional<std::string> flight_dir;
};

/// Fault-tolerance outcome of a run. The chaos-plane counters
/// (data_messages..reordered) and the recovery counters (recoveries,
/// kernels_reassigned, dead_nodes) are deterministic functions of the
/// fault-plan seed; the delivery-layer counters (retransmits, acks, ...)
/// depend on timing and are only lower-bounded by the chaos counters.
struct FtRunReport {
  int64_t data_messages = 0;
  int64_t dropped = 0;
  int64_t duplicated = 0;
  int64_t delayed = 0;
  int64_t reordered = 0;
  int64_t crashes_fired = 0;
  int64_t dead_letters = 0;
  int64_t data_sent = 0;
  int64_t retransmits = 0;
  int64_t duplicates_dropped = 0;
  int64_t acks_sent = 0;
  int64_t heartbeats = 0;
  int64_t recoveries = 0;
  int64_t kernels_reassigned = 0;
  int64_t checkpoints_stored = 0;
  int64_t checkpoint_restores = 0;
  std::vector<std::string> dead_nodes;
  std::vector<int64_t> recovery_latency_ns;
};

struct DistributedRunReport {
  double wall_s = 0.0;
  bool timed_out = false;
  graph::Partition partition;
  /// Which node each partition landed on.
  std::vector<size_t> placement;
  /// Per-node instrumentation (kernels that ran elsewhere show zeroes).
  std::map<std::string, InstrumentationReport> node_reports;
  /// Merged instrumentation across the cluster.
  InstrumentationReport combined;
  /// Per-node telemetry snapshots, shipped over the bus as
  /// kMetricsReport messages (empty unless collect_node_metrics).
  std::map<std::string, obs::MetricsSnapshot> node_metrics;
  /// Cross-node reduction of node_metrics: counters/gauges summed,
  /// histograms merged bucket-wise (time series stay per node). FT runs
  /// also fold in the master-side registry (recovery latency histogram,
  /// heartbeat/recovery counters).
  obs::MetricsSnapshot combined_metrics;
  int64_t messages_delivered = 0;
  /// Interconnect traffic: messages/bytes per destination endpoint.
  BusStats bus;
  graph::GlobalTopology topology;
  /// Fault-tolerance outcome (all zeroes when ft was disabled).
  FtRunReport ft;
  /// Final field contents per MasterOptions::capture_fields:
  /// field name -> age -> densely packed payload bytes.
  std::map<std::string, std::map<Age, std::vector<uint8_t>>> captured;

  // --- distributed causal tracing (ISSUE 6) --------------------------------

  /// The merged trace file (set when MasterOptions::trace_path was).
  std::optional<std::string> trace_file;
  /// The cluster-wide causal span DAG, node-qualified (empty unless the
  /// run collected traces). Timestamps are raw monotonic ns.
  std::vector<obs::SpanRecord> trace_spans;
  /// Per-frame critical paths over trace_spans with latency attributed to
  /// queue/exec/wire/store/recovery buckets; the per-bucket p50/p99
  /// distributions are also folded into combined_metrics as
  /// critpath_<bucket>_ns histograms.
  obs::CriticalPathReport critical_paths;
  /// Flight-recorder dump artifacts written by crashed nodes.
  std::vector<std::string> flight_dumps;
};

class Master {
 public:
  explicit Master(MasterOptions options);

  /// Partitions, places, runs the simulated cluster and collects profiles.
  DistributedRunReport run();

  /// HLS repartitioning input: reweights the final graph with the profile
  /// data of a finished run and partitions again (the paper repartitions
  /// to improve throughput; live task migration is future work there too).
  graph::Partition repartition(const DistributedRunReport& previous) const;

  const graph::FinalGraph& final_graph() const { return final_graph_; }

 private:
  MasterOptions options_;
  Program reference_program_;  ///< used for graph derivation only
  graph::FinalGraph final_graph_;
};

}  // namespace p2g::dist
