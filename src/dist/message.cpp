#include "dist/message.h"

namespace p2g::dist {

namespace {

/// Decoders must consume their input exactly: trailing bytes mean the
/// sender and receiver disagree about the wire format, which silently
/// ignoring would turn into downstream corruption.
void require_exhausted(const Reader& r, const char* what) {
  if (!r.exhausted()) {
    throw_error(ErrorKind::kProtocol,
                std::string(what) + ": trailing bytes after message");
  }
}

void encode_region(Writer& w, const nd::Region& region) {
  w.u32(static_cast<uint32_t>(region.rank()));
  for (const nd::Interval& iv : region.intervals()) {
    w.i64(iv.begin);
    w.i64(iv.end);
  }
}

nd::Region decode_region(Reader& r) {
  const uint32_t rank = r.count(2 * sizeof(int64_t));
  std::vector<nd::Interval> intervals(rank);
  for (uint32_t i = 0; i < rank; ++i) {
    intervals[i].begin = r.i64();
    intervals[i].end = r.i64();
  }
  return nd::Region(std::move(intervals));
}

}  // namespace

std::vector<uint8_t> RemoteStore::encode() const {
  Writer w;
  w.u32(static_cast<uint32_t>(field));
  w.i64(age);
  encode_region(w, region);
  w.u32(static_cast<uint32_t>(producer));
  w.u32(store_decl);
  w.u8(whole ? 1 : 0);
  w.blob(payload.data(), payload.size());
  return w.take();
}

RemoteStore RemoteStore::decode(const std::vector<uint8_t>& bytes) {
  Reader r(bytes);
  RemoteStore out;
  out.field = static_cast<int32_t>(r.u32());
  out.age = r.i64();
  out.region = decode_region(r);
  out.producer = static_cast<int32_t>(r.u32());
  out.store_decl = r.u32();
  out.whole = r.u8() != 0;
  out.payload = r.blob();
  require_exhausted(r, "RemoteStore");
  return out;
}

std::vector<uint8_t> TopologyReport::encode() const {
  Writer w;
  w.str(topology.name);
  w.f64(topology.memory_gb);
  w.u32(static_cast<uint32_t>(topology.units.size()));
  for (const graph::ProcessingUnit& unit : topology.units) {
    w.u8(static_cast<uint8_t>(unit.type));
    w.f64(unit.relative_speed);
  }
  w.u32(static_cast<uint32_t>(topology.buses.size()));
  for (const graph::Link& bus : topology.buses) {
    w.u32(static_cast<uint32_t>(bus.a));
    w.u32(static_cast<uint32_t>(bus.b));
    w.f64(bus.bandwidth_mbps);
    w.f64(bus.latency_us);
  }
  return w.take();
}

TopologyReport TopologyReport::decode(const std::vector<uint8_t>& bytes) {
  Reader r(bytes);
  TopologyReport out;
  out.topology.name = r.str();
  out.topology.memory_gb = r.f64();
  const uint32_t units = r.count(sizeof(uint8_t) + sizeof(double));
  for (uint32_t i = 0; i < units; ++i) {
    graph::ProcessingUnit unit;
    unit.type = static_cast<graph::ProcessingUnit::Type>(r.u8());
    unit.relative_speed = r.f64();
    out.topology.units.push_back(unit);
  }
  const uint32_t buses = r.count(2 * sizeof(uint32_t) + 2 * sizeof(double));
  for (uint32_t i = 0; i < buses; ++i) {
    graph::Link bus;
    bus.a = r.u32();
    bus.b = r.u32();
    bus.bandwidth_mbps = r.f64();
    bus.latency_us = r.f64();
    out.topology.buses.push_back(bus);
  }
  require_exhausted(r, "TopologyReport");
  return out;
}

std::vector<uint8_t> ProfileReport::encode() const {
  Writer w;
  w.u32(static_cast<uint32_t>(report.kernels.size()));
  for (const KernelStats& k : report.kernels) {
    w.str(k.name);
    w.i64(k.dispatches);
    w.i64(k.instances);
    w.i64(k.dispatch_ns);
    w.i64(k.kernel_ns);
  }
  return w.take();
}

ProfileReport ProfileReport::decode(const std::vector<uint8_t>& bytes) {
  Reader r(bytes);
  ProfileReport out;
  const uint32_t kernels = r.count(sizeof(uint32_t) + 4 * sizeof(int64_t));
  for (uint32_t i = 0; i < kernels; ++i) {
    KernelStats k;
    k.name = r.str();
    k.dispatches = r.i64();
    k.instances = r.i64();
    k.dispatch_ns = r.i64();
    k.kernel_ns = r.i64();
    out.report.kernels.push_back(std::move(k));
  }
  require_exhausted(r, "ProfileReport");
  return out;
}

namespace {

void encode_values(Writer& w, const std::vector<obs::CounterValue>& values) {
  w.u32(static_cast<uint32_t>(values.size()));
  for (const obs::CounterValue& v : values) {
    w.str(v.name);
    w.i64(v.value);
  }
}

std::vector<obs::CounterValue> decode_values(Reader& r) {
  std::vector<obs::CounterValue> out;
  const uint32_t n = r.count(sizeof(uint32_t) + sizeof(int64_t));
  out.reserve(n);
  for (uint32_t i = 0; i < n; ++i) {
    obs::CounterValue v;
    v.name = r.str();
    v.value = r.i64();
    out.push_back(std::move(v));
  }
  return out;
}

}  // namespace

std::vector<uint8_t> MetricsReport::encode() const {
  Writer w;
  w.str(node);
  encode_values(w, snapshot.counters);
  encode_values(w, snapshot.gauges);
  w.u32(static_cast<uint32_t>(snapshot.histograms.size()));
  for (const obs::HistogramSnapshot& h : snapshot.histograms) {
    w.str(h.name);
    w.i64(h.count);
    w.i64(h.sum);
    w.i64(h.min);
    w.i64(h.max);
    w.u32(static_cast<uint32_t>(h.buckets.size()));
    for (int64_t bucket : h.buckets) w.i64(bucket);
  }
  w.u32(static_cast<uint32_t>(snapshot.series.size()));
  for (const obs::TimeSeries& ts : snapshot.series) {
    w.str(ts.name);
    w.u32(static_cast<uint32_t>(ts.samples.size()));
    for (const obs::TimeSeriesSample& s : ts.samples) {
      w.i64(s.t_ns);
      w.i64(s.value);
    }
  }
  return w.take();
}

MetricsReport MetricsReport::decode(const std::vector<uint8_t>& bytes) {
  Reader r(bytes);
  MetricsReport out;
  out.node = r.str();
  out.snapshot.counters = decode_values(r);
  out.snapshot.gauges = decode_values(r);
  const uint32_t histograms = r.count(2 * sizeof(uint32_t));
  out.snapshot.histograms.reserve(histograms);
  for (uint32_t i = 0; i < histograms; ++i) {
    obs::HistogramSnapshot h;
    h.name = r.str();
    h.count = r.i64();
    h.sum = r.i64();
    h.min = r.i64();
    h.max = r.i64();
    const uint32_t buckets = r.count(sizeof(int64_t));
    h.buckets.reserve(buckets);
    for (uint32_t b = 0; b < buckets; ++b) h.buckets.push_back(r.i64());
    out.snapshot.histograms.push_back(std::move(h));
  }
  const uint32_t series = r.count(2 * sizeof(uint32_t));
  out.snapshot.series.reserve(series);
  for (uint32_t i = 0; i < series; ++i) {
    obs::TimeSeries ts;
    ts.name = r.str();
    const uint32_t samples = r.count(2 * sizeof(int64_t));
    ts.samples.reserve(samples);
    for (uint32_t s = 0; s < samples; ++s) {
      obs::TimeSeriesSample sample;
      sample.t_ns = r.i64();
      sample.value = r.i64();
      ts.samples.push_back(sample);
    }
    out.snapshot.series.push_back(std::move(ts));
  }
  require_exhausted(r, "MetricsReport");
  return out;
}

std::vector<uint8_t> DataEnvelope::encode() const {
  Writer w;
  w.i64(static_cast<int64_t>(seq));
  w.i64(static_cast<int64_t>(trace_id));
  w.i64(static_cast<int64_t>(parent_span));
  w.u8(static_cast<uint8_t>(inner_type));
  w.blob(inner.data(), inner.size());
  return w.take();
}

DataEnvelope DataEnvelope::decode(const std::vector<uint8_t>& bytes) {
  Reader r(bytes);
  DataEnvelope out;
  out.seq = static_cast<uint64_t>(r.i64());
  out.trace_id = static_cast<uint64_t>(r.i64());
  out.parent_span = static_cast<uint64_t>(r.i64());
  out.inner_type = static_cast<MessageType>(r.u8());
  out.inner = r.blob();
  require_exhausted(r, "DataEnvelope");
  return out;
}

std::vector<uint8_t> AckMsg::encode() const {
  Writer w;
  w.i64(static_cast<int64_t>(cumulative));
  return w.take();
}

AckMsg AckMsg::decode(const std::vector<uint8_t>& bytes) {
  Reader r(bytes);
  AckMsg out;
  out.cumulative = static_cast<uint64_t>(r.i64());
  require_exhausted(r, "AckMsg");
  return out;
}

std::vector<uint8_t> HeartbeatMsg::encode() const {
  Writer w;
  w.i64(seq);
  w.i64(sent_ns);
  return w.take();
}

HeartbeatMsg HeartbeatMsg::decode(const std::vector<uint8_t>& bytes) {
  Reader r(bytes);
  HeartbeatMsg out;
  out.seq = r.i64();
  out.sent_ns = r.i64();
  require_exhausted(r, "HeartbeatMsg");
  return out;
}

std::vector<uint8_t> ReassignMsg::encode() const {
  Writer w;
  w.str(dead);
  w.u32(static_cast<uint32_t>(kernels.size()));
  for (const auto& [kernel, owner] : kernels) {
    w.str(kernel);
    w.str(owner);
  }
  return w.take();
}

ReassignMsg ReassignMsg::decode(const std::vector<uint8_t>& bytes) {
  Reader r(bytes);
  ReassignMsg out;
  out.dead = r.str();
  const uint32_t n = r.count(2 * sizeof(uint32_t));
  out.kernels.reserve(n);
  for (uint32_t i = 0; i < n; ++i) {
    std::string kernel = r.str();
    std::string owner = r.str();
    out.kernels.emplace_back(std::move(kernel), std::move(owner));
  }
  require_exhausted(r, "ReassignMsg");
  return out;
}

std::vector<uint8_t> IdleReport::encode() const {
  Writer w;
  w.u8(idle ? 1 : 0);
  w.i64(stores_sent);
  w.i64(stores_received);
  return w.take();
}

IdleReport IdleReport::decode(const std::vector<uint8_t>& bytes) {
  Reader r(bytes);
  IdleReport out;
  out.idle = r.u8() != 0;
  out.stores_sent = r.i64();
  out.stores_received = r.i64();
  require_exhausted(r, "IdleReport");
  return out;
}

}  // namespace p2g::dist
