#include "dist/message.h"

namespace p2g::dist {

namespace {

void encode_region(Writer& w, const nd::Region& region) {
  w.u32(static_cast<uint32_t>(region.rank()));
  for (const nd::Interval& iv : region.intervals()) {
    w.i64(iv.begin);
    w.i64(iv.end);
  }
}

nd::Region decode_region(Reader& r) {
  const uint32_t rank = r.u32();
  std::vector<nd::Interval> intervals(rank);
  for (uint32_t i = 0; i < rank; ++i) {
    intervals[i].begin = r.i64();
    intervals[i].end = r.i64();
  }
  return nd::Region(std::move(intervals));
}

}  // namespace

std::vector<uint8_t> RemoteStore::encode() const {
  Writer w;
  w.u32(static_cast<uint32_t>(field));
  w.i64(age);
  encode_region(w, region);
  w.u32(static_cast<uint32_t>(producer));
  w.u32(store_decl);
  w.u8(whole ? 1 : 0);
  w.blob(payload.data(), payload.size());
  return w.take();
}

RemoteStore RemoteStore::decode(const std::vector<uint8_t>& bytes) {
  Reader r(bytes);
  RemoteStore out;
  out.field = static_cast<int32_t>(r.u32());
  out.age = r.i64();
  out.region = decode_region(r);
  out.producer = static_cast<int32_t>(r.u32());
  out.store_decl = r.u32();
  out.whole = r.u8() != 0;
  out.payload = r.blob();
  return out;
}

std::vector<uint8_t> TopologyReport::encode() const {
  Writer w;
  w.str(topology.name);
  w.f64(topology.memory_gb);
  w.u32(static_cast<uint32_t>(topology.units.size()));
  for (const graph::ProcessingUnit& unit : topology.units) {
    w.u8(static_cast<uint8_t>(unit.type));
    w.f64(unit.relative_speed);
  }
  w.u32(static_cast<uint32_t>(topology.buses.size()));
  for (const graph::Link& bus : topology.buses) {
    w.u32(static_cast<uint32_t>(bus.a));
    w.u32(static_cast<uint32_t>(bus.b));
    w.f64(bus.bandwidth_mbps);
    w.f64(bus.latency_us);
  }
  return w.take();
}

TopologyReport TopologyReport::decode(const std::vector<uint8_t>& bytes) {
  Reader r(bytes);
  TopologyReport out;
  out.topology.name = r.str();
  out.topology.memory_gb = r.f64();
  const uint32_t units = r.u32();
  for (uint32_t i = 0; i < units; ++i) {
    graph::ProcessingUnit unit;
    unit.type = static_cast<graph::ProcessingUnit::Type>(r.u8());
    unit.relative_speed = r.f64();
    out.topology.units.push_back(unit);
  }
  const uint32_t buses = r.u32();
  for (uint32_t i = 0; i < buses; ++i) {
    graph::Link bus;
    bus.a = r.u32();
    bus.b = r.u32();
    bus.bandwidth_mbps = r.f64();
    bus.latency_us = r.f64();
    out.topology.buses.push_back(bus);
  }
  return out;
}

std::vector<uint8_t> ProfileReport::encode() const {
  Writer w;
  w.u32(static_cast<uint32_t>(report.kernels.size()));
  for (const KernelStats& k : report.kernels) {
    w.str(k.name);
    w.i64(k.dispatches);
    w.i64(k.instances);
    w.i64(k.dispatch_ns);
    w.i64(k.kernel_ns);
  }
  return w.take();
}

ProfileReport ProfileReport::decode(const std::vector<uint8_t>& bytes) {
  Reader r(bytes);
  ProfileReport out;
  const uint32_t kernels = r.u32();
  for (uint32_t i = 0; i < kernels; ++i) {
    KernelStats k;
    k.name = r.str();
    k.dispatches = r.i64();
    k.instances = r.i64();
    k.dispatch_ns = r.i64();
    k.kernel_ns = r.i64();
    out.report.kernels.push_back(std::move(k));
  }
  return out;
}

std::vector<uint8_t> IdleReport::encode() const {
  Writer w;
  w.u8(idle ? 1 : 0);
  w.i64(stores_sent);
  w.i64(stores_received);
  return w.take();
}

IdleReport IdleReport::decode(const std::vector<uint8_t>& bytes) {
  Reader r(bytes);
  IdleReport out;
  out.idle = r.u8() != 0;
  out.stores_sent = r.i64();
  out.stores_received = r.i64();
  return out;
}

}  // namespace p2g::dist
