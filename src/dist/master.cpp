#include "dist/master.h"

#include <thread>

#include "common/clock.h"
#include "common/error.h"
#include "common/logging.h"

namespace p2g::dist {

Master::Master(MasterOptions options)
    : options_(std::move(options)),
      reference_program_(options_.program_factory
                             ? options_.program_factory()
                             : Program{}),
      final_graph_(graph::FinalGraph::from_program(reference_program_)) {
  check_argument(static_cast<bool>(options_.program_factory),
                 "MasterOptions::program_factory is required");
  check_argument(options_.nodes >= 1, "need at least one execution node");
}

DistributedRunReport Master::run() {
  DistributedRunReport result;
  Stopwatch stopwatch;

  // 1. Partition the final static dependency graph.
  result.partition =
      options_.use_tabu
          ? graph::tabu_partition(final_graph_, options_.nodes)
          : graph::partition_graph(final_graph_, options_.nodes);

  // 2. Spin up the simulated cluster and gather topology reports.
  MessageBus bus;
  auto master_mailbox = bus.register_endpoint("master");

  std::vector<std::string> node_names;
  for (int i = 0; i < options_.nodes; ++i) {
    node_names.push_back("node" + std::to_string(i));
  }

  // 3. Place partitions on nodes by capacity. (Topology reports arrive
  // after registration; for the simulation all nodes look alike, so the
  // placement is computed from the local machine description.)
  graph::GlobalTopology topology;
  for (const std::string& name : node_names) {
    topology.add_node(graph::NodeTopology::local_machine(name));
  }
  result.placement =
      topology.place_partitions(result.partition.part_weights(final_graph_));

  std::map<std::string, std::string> kernel_owner;
  for (size_t k = 0; k < final_graph_.kernel_count(); ++k) {
    const int part = result.partition.assignment[k];
    const size_t node = result.placement[static_cast<size_t>(part)];
    kernel_owner[final_graph_.kernel_names[k]] = node_names[node];
  }

  RunOptions base = options_.base_options;
  base.workers = options_.workers_per_node;
  if (options_.collect_node_metrics) base.metrics.enabled = true;

  std::vector<std::unique_ptr<ExecutionNode>> nodes;
  for (const std::string& name : node_names) {
    nodes.push_back(std::make_unique<ExecutionNode>(
        name, options_.program_factory(), kernel_owner, bus, base));
  }
  for (auto& node : nodes) node->announce("master");
  for (auto& node : nodes) node->start();

  // Merge the announced topologies (the paper's global topology).
  while (auto message = master_mailbox->try_pop()) {
    if (message->type == MessageType::kTopologyReport) {
      result.topology.add_node(
          TopologyReport::decode(message->payload).topology);
    }
  }

  // 4. Termination detection: two consecutive observations of
  // "every node idle, no messages in flight, send/receive counts
  // conserved and unchanged" mean global quiescence.
  const int64_t deadline_ns =
      now_ns() + options_.watchdog.count() * 1'000'000;
  int stable_rounds = 0;
  int64_t last_sent = -1;
  while (stable_rounds < 2) {
    if (now_ns() > deadline_ns) {
      result.timed_out = true;
      break;
    }
    bool all_idle = true;
    int64_t sent = 0;
    int64_t received = 0;
    for (const auto& node : nodes) {
      all_idle = all_idle && node->idle() && node->mailbox_empty();
      sent += node->stores_sent();
      received += node->stores_received();
    }
    if (all_idle && sent == received && sent == last_sent) {
      ++stable_rounds;
    } else {
      stable_rounds = 0;
    }
    last_sent = sent;
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }

  // 5. Shut the cluster down and collect profiles.
  Message shutdown;
  shutdown.type = MessageType::kShutdown;
  shutdown.from = "master";
  bus.broadcast(std::move(shutdown));
  for (auto& node : nodes) node->join();

  // Each node shipped its telemetry registry during join(); aggregate the
  // snapshots into the cluster-wide view.
  while (auto message = master_mailbox->try_pop()) {
    if (message->type != MessageType::kMetricsReport) continue;
    MetricsReport metrics = MetricsReport::decode(message->payload);
    result.combined_metrics.merge(metrics.snapshot);
    result.node_metrics.emplace(std::move(metrics.node),
                                std::move(metrics.snapshot));
  }

  for (auto& node : nodes) {
    InstrumentationReport report = node->runtime().instrumentation();
    // Serialize through the profile message to exercise the wire format.
    ProfileReport profile;
    profile.report = report;
    const InstrumentationReport round_tripped =
        ProfileReport::decode(profile.encode()).report;
    result.node_reports.emplace(node->name(), round_tripped);
  }

  // Merge: each kernel ran on exactly one node.
  result.combined.kernels.clear();
  for (const std::string& kernel_name : final_graph_.kernel_names) {
    KernelStats merged;
    merged.name = kernel_name;
    for (const auto& [node_name, report] : result.node_reports) {
      if (const KernelStats* stats = report.find(kernel_name)) {
        merged.dispatches += stats->dispatches;
        merged.instances += stats->instances;
        merged.dispatch_ns += stats->dispatch_ns;
        merged.kernel_ns += stats->kernel_ns;
      }
    }
    result.combined.kernels.push_back(std::move(merged));
  }

  result.bus = bus.stats();
  result.messages_delivered = result.bus.delivered;
  result.wall_s = stopwatch.elapsed_s();
  return result;
}

graph::Partition Master::repartition(
    const DistributedRunReport& previous) const {
  graph::FinalGraph weighted = final_graph_;
  weighted.apply_instrumentation(previous.combined);
  return options_.use_tabu
             ? graph::tabu_partition(weighted, options_.nodes)
             : graph::partition_graph(weighted, options_.nodes);
}

}  // namespace p2g::dist
