#include "dist/master.h"

#include <algorithm>
#include <fstream>
#include <set>
#include <thread>

#include "common/clock.h"
#include "common/error.h"
#include "common/logging.h"
#include "ft/checkpoint.h"

namespace p2g::dist {

namespace {

/// core SpanKind → obs mirror (the enumerators share values by contract).
obs::SpanKind to_obs_kind(SpanKind kind) {
  return static_cast<obs::SpanKind>(static_cast<uint8_t>(kind));
}

/// Converts one collector's spans into node-qualified analyzer records.
void append_spans(const TraceCollector& trace, const std::string& node,
                  std::vector<obs::SpanRecord>* out) {
  for (TraceCollector::Span& span : trace.spans_snapshot()) {
    obs::SpanRecord rec;
    rec.name = std::move(span.name);
    rec.node = node;
    rec.thread_id = span.thread_id;
    rec.start_ns = span.start_ns;
    rec.duration_ns = span.duration_ns;
    rec.age = span.age;
    rec.trace_id = span.trace_id;
    rec.span_id = span.span_id;
    rec.parent_span = span.parent_span;
    rec.kind = to_obs_kind(span.kind);
    out->push_back(std::move(rec));
  }
}

}  // namespace

Master::Master(MasterOptions options)
    : options_(std::move(options)),
      reference_program_(options_.program_factory
                             ? options_.program_factory()
                             : Program{}),
      final_graph_(graph::FinalGraph::from_program(reference_program_)) {
  check_argument(static_cast<bool>(options_.program_factory),
                 "MasterOptions::program_factory is required");
  check_argument(options_.nodes >= 1, "need at least one execution node");
}

DistributedRunReport Master::run() {
  DistributedRunReport result;
  Stopwatch stopwatch;
  const bool ft_on = options_.ft.enabled;

  // 1. Partition the final static dependency graph.
  result.partition =
      options_.use_tabu
          ? graph::tabu_partition(final_graph_, options_.nodes)
          : graph::partition_graph(final_graph_, options_.nodes);

  // 2. Spin up the simulated cluster and gather topology reports. In FT
  // mode the transport is the in-process bus decorated with a ChaosBus
  // driving the seeded fault plan — the same decorator shape a socket
  // backend gets in chaos mode.
  auto bus_holder = std::make_unique<MessageBus>();
  std::unique_ptr<ft::ChaosBus> chaos_holder;
  ft::ChaosBus* chaos = nullptr;
  net::Transport* transport = bus_holder.get();
  if (ft_on) {
    chaos_holder =
        std::make_unique<ft::ChaosBus>(options_.ft.plan, *bus_holder);
    chaos = chaos_holder.get();
    transport = chaos;
  }
  net::Transport& bus = *transport;
  auto master_mailbox = bus.register_endpoint("master");

  std::vector<std::string> node_names;
  for (int i = 0; i < options_.nodes; ++i) {
    node_names.push_back("node" + std::to_string(i));
  }

  // 3. Place partitions on nodes by capacity. (Topology reports arrive
  // after registration; for the simulation all nodes look alike, so the
  // placement is computed from the local machine description.)
  graph::GlobalTopology topology;
  for (const std::string& name : node_names) {
    topology.add_node(graph::NodeTopology::local_machine(name));
  }
  result.placement =
      topology.place_partitions(result.partition.part_weights(final_graph_));

  std::map<std::string, std::string> kernel_owner;
  for (size_t k = 0; k < final_graph_.kernel_count(); ++k) {
    const int part = result.partition.assignment[k];
    const size_t node = result.placement[static_cast<size_t>(part)];
    kernel_owner[final_graph_.kernel_names[k]] = node_names[node];
  }

  RunOptions base = options_.base_options;
  base.workers = options_.workers_per_node;
  if (options_.collect_node_metrics) base.metrics.enabled = true;
  const bool tracing =
      options_.trace_path.has_value() || base.collect_trace;
  if (tracing) base.collect_trace = true;
  if (options_.flight_dir) {
    base.flight_recorder = true;
    base.flight_dir = options_.flight_dir;
  }

  NodeFtOptions node_ft;
  if (ft_on) {
    node_ft.enabled = true;
    node_ft.heartbeat_period_ms = options_.ft.heartbeat_period_ms;
    node_ft.checkpoint_every_beats = options_.ft.checkpoint_every_beats;
    node_ft.channel = options_.ft.channel;
  }

  std::vector<std::unique_ptr<ExecutionNode>> nodes;
  for (const std::string& name : node_names) {
    nodes.push_back(std::make_unique<ExecutionNode>(
        name, options_.program_factory(), kernel_owner, bus, base,
        node_ft));
  }

  // Scripted crashes: fence the node off the bus (mailbox closed, traffic
  // blackholed) and stop it. Runs on whatever thread tripped the trigger;
  // recovery itself happens on the master loop via the failure detector.
  if (chaos != nullptr) {
    chaos->set_crash_handler([&nodes, &bus](const std::string& name) {
      for (auto& node : nodes) {
        if (node->name() == name) {
          bus.mark_dead(name);
          node->crash();
          break;
        }
      }
    });
  }

  for (auto& node : nodes) node->announce("master");
  for (auto& node : nodes) node->start();

  // Master-side FT state: failure detector primed with a synthetic beat
  // per node (so a node that dies before its first heartbeat is still
  // suspected), retained checkpoints, recovery bookkeeping.
  ft::FailureDetector detector(options_.ft.detector);
  ft::CheckpointStore checkpoints;
  obs::MetricsRegistry master_registry;
  // Master control lane of the merged trace: recovery spans (failure
  // detection + reassignment, recorded below in recover()).
  TraceCollector master_trace;
  uint64_t master_span_seq = 1;  ///< master-loop thread only
  FtRunReport ftr;
  std::set<std::string> dead;
  if (ft_on) {
    const int64_t t0 = now_ns();
    for (const std::string& name : node_names) {
      detector.heartbeat(name, t0);
    }
  }

  // Drains the master mailbox: topology reports (merged below), FT
  // control traffic (heartbeats, checkpoints), and — after join —
  // metrics reports, which are aggregated at the end.
  std::vector<Message> metrics_messages;
  const auto drain_master = [&] {
    while (auto message = master_mailbox->try_pop()) {
      switch (message->type) {
        case MessageType::kTopologyReport:
          result.topology.add_node(
              TopologyReport::decode(message->payload).topology);
          break;
        case MessageType::kHeartbeat:
          detector.heartbeat(message->from, now_ns());
          ++ftr.heartbeats;
          break;
        case MessageType::kCheckpoint:
          checkpoints.put(RemoteStore::decode(message->payload));
          ++ftr.checkpoints_stored;
          break;
        case MessageType::kMetricsReport:
          metrics_messages.push_back(std::move(*message));
          break;
        default:
          break;
      }
    }
  };

  // Recovery: fence the dead node, reassign its kernels round-robin over
  // the (sorted) survivors, and replay retained checkpoints to them. The
  // reassignment is a deterministic function of the (seeded) crash, so
  // same-seed runs recover identically.
  const auto recover = [&](const std::string& dead_name) {
    if (dead.count(dead_name)) return;
    dead.insert(dead_name);
    const int64_t rec_t0 = now_ns();
    const int64_t latency = now_ns() - detector.last_beat_ns(dead_name);
    bus.mark_dead(dead_name);
    for (auto& node : nodes) {
      if (node->name() == dead_name) node->crash();
    }
    detector.remove(dead_name);
    ftr.dead_nodes.push_back(dead_name);
    ftr.recovery_latency_ns.push_back(latency);
    master_registry.histogram("ft_recovery_latency_ns").record(latency);

    std::vector<std::string> alive;
    for (const std::string& name : node_names) {
      if (!dead.count(name)) alive.push_back(name);
    }
    ++ftr.recoveries;
    if (alive.empty()) {
      P2G_WARN << "master: node " << dead_name
               << " died and no survivors remain";
      return;
    }
    ReassignMsg reassign;
    reassign.dead = dead_name;
    size_t next = 0;
    for (auto& [kernel, owner] : kernel_owner) {
      if (owner != dead_name) continue;
      owner = alive[next++ % alive.size()];
      reassign.kernels.emplace_back(kernel, owner);
    }
    ftr.kernels_reassigned += static_cast<int64_t>(reassign.kernels.size());
    Message message;
    message.type = MessageType::kReassign;
    message.from = "master";
    message.payload = reassign.encode();
    for (const std::string& name : alive) bus.send(name, message);
    // Checkpoint fallback: data whose producer and every forwarded copy
    // died is restored from the latest retained snapshots (fill-mode
    // injection dedups whatever the survivors already hold).
    for (const auto& [key, snapshot] : checkpoints.all()) {
      Message restore;
      restore.type = MessageType::kRemoteStore;
      restore.from = "master";
      restore.payload = snapshot.encode();
      for (const std::string& name : alive) {
        bus.send(name, restore);
        ++ftr.checkpoint_restores;
      }
    }
    if (tracing) {
      TraceCollector::Span span;
      span.name = "recover:" + dead_name;
      span.start_ns = rec_t0;
      span.duration_ns = now_ns() - rec_t0;
      span.thread_id = 0;
      span.age = 0;
      span.bodies = static_cast<int64_t>(reassign.kernels.size());
      span.kind = SpanKind::kRecovery;
      span.span_id = mix(0x6D72656376727931ULL, master_span_seq++);
      if (span.span_id == 0) span.span_id = 1;
      master_trace.record(std::move(span));
    }
  };

  drain_master();  // merge the announced topologies

  // 4. Termination detection. Fault-free: two consecutive observations of
  // "every node idle, no messages in flight, send/receive counts
  // conserved and unchanged". FT: drops, dups and crashes break message
  // conservation, so quiescence becomes "every *alive* node idle with an
  // empty mailbox and a drained reliable channel, and no delayed message
  // on the chaos wire" — acks-after-apply make a drained channel prove
  // the data actually landed.
  const int64_t deadline_ns =
      now_ns() + options_.watchdog.count() * 1'000'000;
  int stable_rounds = 0;
  int64_t last_sent = -1;
  while (stable_rounds < 2) {
    if (now_ns() > deadline_ns) {
      result.timed_out = true;
      break;
    }
    if (ft_on) {
      drain_master();
      for (const std::string& suspect : detector.suspects(now_ns())) {
        recover(suspect);
      }
      bool quiet = chaos->in_flight() == 0;
      for (const auto& node : nodes) {
        if (dead.count(node->name())) continue;
        quiet = quiet && node->idle() && node->mailbox_empty() &&
                node->channel_unacked() == 0;
      }
      stable_rounds = quiet ? stable_rounds + 1 : 0;
    } else {
      bool all_idle = true;
      int64_t sent = 0;
      int64_t received = 0;
      for (const auto& node : nodes) {
        all_idle = all_idle && node->idle() && node->mailbox_empty();
        sent += node->stores_sent();
        received += node->stores_received();
      }
      if (all_idle && sent == received && sent == last_sent) {
        ++stable_rounds;
      } else {
        stable_rounds = 0;
      }
      last_sent = sent;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }

  // 5. Shut the cluster down and collect profiles.
  Message shutdown;
  shutdown.type = MessageType::kShutdown;
  shutdown.from = "master";
  bus.broadcast(std::move(shutdown));
  for (auto& node : nodes) node->join();
  if (chaos != nullptr) chaos->shutdown();

  // Nodes ship telemetry periodically from the heartbeat loop and once
  // more during join(); keep the *latest* snapshot per node (mailbox
  // order is send order per sender), so a node that crashed mid-run still
  // contributes its last periodic snapshot, then reduce over the
  // retained set — merging every message would multiply counters.
  drain_master();
  for (const Message& message : metrics_messages) {
    MetricsReport metrics = MetricsReport::decode(message.payload);
    result.node_metrics[metrics.node] = std::move(metrics.snapshot);
  }
  for (const auto& [node_name, snapshot] : result.node_metrics) {
    result.combined_metrics.merge(snapshot);
  }

  for (auto& node : nodes) {
    InstrumentationReport report = node->runtime().instrumentation();
    // Serialize through the profile message to exercise the wire format.
    ProfileReport profile;
    profile.report = report;
    const InstrumentationReport round_tripped =
        ProfileReport::decode(profile.encode()).report;
    result.node_reports.emplace(node->name(), round_tripped);
  }

  // Merge: each kernel ran on exactly one node.
  result.combined.kernels.clear();
  for (const std::string& kernel_name : final_graph_.kernel_names) {
    KernelStats merged;
    merged.name = kernel_name;
    for (const auto& [node_name, report] : result.node_reports) {
      if (const KernelStats* stats = report.find(kernel_name)) {
        merged.dispatches += stats->dispatches;
        merged.instances += stats->instances;
        merged.dispatch_ns += stats->dispatch_ns;
        merged.kernel_ns += stats->kernel_ns;
      }
    }
    result.combined.kernels.push_back(std::move(merged));
  }

  // Capture requested fields for bit-exact comparisons: every complete
  // age, merged across surviving nodes (a field may live on several).
  for (const std::string& field_name : options_.capture_fields) {
    auto& ages = result.captured[field_name];
    for (auto& node : nodes) {
      if (node->crashed()) continue;
      FieldStorage& storage = node->runtime().storage(field_name);
      for (const Age age : storage.live_ages()) {
        if (!storage.is_complete(age) || ages.count(age)) continue;
        const nd::AnyBuffer data = storage.fetch_whole(age);
        const auto* raw = reinterpret_cast<const uint8_t*>(data.raw());
        ages[age].assign(
            raw, raw + static_cast<size_t>(data.element_count()) *
                           nd::element_size(data.type()));
      }
    }
  }

  if (ft_on) {
    const ft::ChaosBus::ChaosStats chaos_stats = chaos->chaos_stats();
    ftr.data_messages = chaos_stats.data_messages;
    ftr.dropped = chaos_stats.dropped;
    ftr.duplicated = chaos_stats.duplicated;
    ftr.delayed = chaos_stats.delayed;
    ftr.reordered = chaos_stats.reordered;
    ftr.crashes_fired = chaos_stats.crashes_fired;
    for (const auto& node : nodes) {
      if (node->crashed()) continue;
      const ft::ReliableChannel::Stats s = node->channel_stats();
      ftr.data_sent += s.data_sent;
      ftr.retransmits += s.retransmits;
      ftr.duplicates_dropped += s.duplicates_dropped;
      ftr.acks_sent += s.acks_sent;
    }
    master_registry.counter("ft_heartbeats_total").add(ftr.heartbeats);
    master_registry.counter("ft_recoveries_total").add(ftr.recoveries);
    master_registry.counter("ft_kernels_reassigned_total")
        .add(ftr.kernels_reassigned);
    master_registry.counter("ft_checkpoints_stored_total")
        .add(ftr.checkpoints_stored);
    master_registry.counter("ft_checkpoint_restores_total")
        .add(ftr.checkpoint_restores);
    result.combined_metrics.merge(master_registry.snapshot());
  }

  // Causal tracing: harvest every lane's spans into one node-qualified
  // DAG, compute per-frame critical paths, and stitch the merged trace
  // file (one pid lane per node, the master control lane, and crashed
  // nodes' flight-recorder lanes rendering their final moments).
  for (auto& node : nodes) {
    if (node->flight_dump()) {
      result.flight_dumps.push_back(*node->flight_dump());
    }
  }
  if (tracing) {
    append_spans(master_trace, "master", &result.trace_spans);
    for (auto& node : nodes) {
      if (const TraceCollector* trace = node->runtime().trace()) {
        append_spans(*trace, node->name(), &result.trace_spans);
      }
    }
    result.critical_paths =
        obs::analyze_critical_paths(result.trace_spans);
    // Fold the per-frame latency distributions into the cluster metrics
    // (critpath_<bucket>_ns / critpath_total_ns histograms).
    obs::MetricsSnapshot critpath_metrics;
    critpath_metrics.histograms = result.critical_paths.bucket_latency;
    critpath_metrics.histograms.push_back(
        result.critical_paths.total_latency);
    result.combined_metrics.merge(critpath_metrics);

    if (options_.trace_path) {
      // Shared epoch: the earliest event across all lanes, so the merged
      // timeline starts at ts 0.
      int64_t epoch = 0;
      const auto fold_epoch = [&epoch](int64_t t) {
        if (t > 0 && (epoch == 0 || t < epoch)) epoch = t;
      };
      fold_epoch(master_trace.earliest_ns());
      for (auto& node : nodes) {
        if (const TraceCollector* trace = node->runtime().trace()) {
          fold_epoch(trace->earliest_ns());
        }
      }

      std::ofstream os(*options_.trace_path,
                       std::ios::binary | std::ios::trunc);
      if (!os.good()) {
        throw_error(ErrorKind::kIo, "cannot write merged trace '" +
                                        *options_.trace_path + "'");
      }
      os << "[\n";
      bool first = true;
      master_trace.emit_events(os, 0, "master", epoch, first);
      for (size_t i = 0; i < nodes.size(); ++i) {
        if (const TraceCollector* trace = nodes[i]->runtime().trace()) {
          trace->emit_events(os, static_cast<int>(i) + 1,
                             nodes[i]->name(), epoch, first);
        }
      }
      for (size_t i = 0; i < nodes.size(); ++i) {
        if (!nodes[i]->crashed()) continue;
        const FlightRecorder* flight = nodes[i]->runtime().flight();
        if (flight == nullptr) continue;
        flight->emit_events(
            os, static_cast<int>(nodes.size() + 1 + i),
            nodes[i]->name() + ".flight", epoch, first);
      }
      os << "\n]\n";
      if (!os.good()) {
        throw_error(ErrorKind::kIo, "short write on merged trace '" +
                                        *options_.trace_path + "'");
      }
      result.trace_file = options_.trace_path;
    }
  }

  result.bus = bus.stats();
  result.messages_delivered = result.bus.delivered;
  ftr.dead_letters = result.bus.dead_letters;
  result.ft = std::move(ftr);
  result.wall_s = stopwatch.elapsed_s();
  return result;
}

graph::Partition Master::repartition(
    const DistributedRunReport& previous) const {
  graph::FinalGraph weighted = final_graph_;
  weighted.apply_instrumentation(previous.combined);
  return options_.use_tabu
             ? graph::tabu_partition(weighted, options_.nodes)
             : graph::partition_graph(weighted, options_.nodes);
}

}  // namespace p2g::dist
