#include "dist/exec_node.h"

#include <algorithm>
#include <chrono>

#include "common/clock.h"
#include "common/error.h"
#include "common/logging.h"

namespace p2g::dist {

namespace {

/// Trace lane for wire sends, remote-store applies and reassignments
/// (matches TraceCollector's default "net" thread label).
constexpr int64_t kNetLane = -2;

}  // namespace

ExecutionNode::ExecutionNode(
    std::string name, Program program,
    const std::map<std::string, std::string>& kernel_owner,
    net::Transport& bus, RunOptions base_options, NodeFtOptions ft)
    : name_(std::move(name)),
      bus_(bus),
      ft_(std::move(ft)),
      kernel_owner_(kernel_owner) {
  mailbox_ = bus_.register_endpoint(name_);

  // Enable only this node's kernels.
  RunOptions options = std::move(base_options);
  options.keep_alive = true;
  // The node's name labels its process lane in the merged trace and salts
  // its span ids (so ids never collide across nodes).
  options.trace_label = name_;
  if (ft_.enabled) options.idempotent_stores = true;
  for (const KernelDef& k : program.kernels()) {
    const auto it = kernel_owner.find(k.name);
    check_argument(it != kernel_owner.end(),
                   "kernel '" + k.name + "' has no owner");
    if (it->second != name_) {
      options.disabled_kernels.insert(k.name);
    }
  }

  // Forwarding map: for every field, the remote nodes hosting consumers.
  forward_targets_.resize(program.fields().size());
  for (const FieldDecl& f : program.fields()) {
    std::vector<std::string>& targets =
        forward_targets_[static_cast<size_t>(f.id)];
    for (const Program::Use& use : program.consumers_of(f.id)) {
      const std::string& owner =
          kernel_owner.at(program.kernel(use.kernel).name);
      if (owner != name_ &&
          std::find(targets.begin(), targets.end(), owner) ==
              targets.end()) {
        targets.push_back(owner);
      }
    }
  }

  options.store_tap = [this](const StoreEvent& event) {
    forward_store(event);
  };

  runtime_ = std::make_unique<Runtime>(std::move(program),
                                       std::move(options));
  if (ft_.enabled) {
    channel_ = std::make_unique<ft::ReliableChannel>(bus_, name_,
                                                     ft_.channel);
    channel_->set_trace(runtime_->mutable_trace());
  }
}

TraceContext ExecutionNode::begin_wire_span(const StoreEvent& event,
                                            int64_t* t0) {
  if (!event.ctx.valid() ||
      (runtime_->trace() == nullptr && runtime_->flight() == nullptr)) {
    return {};
  }
  *t0 = now_ns();
  return TraceContext{event.ctx.trace_id, runtime_->next_span_id()};
}

void ExecutionNode::end_wire_span(const StoreEvent& event,
                                  const TraceContext& wire,
                                  const std::string& target, int64_t t0) {
  if (!wire.valid()) return;
  const int64_t t1 = now_ns();
  if (TraceCollector* trace = runtime_->mutable_trace()) {
    // The producer's flow arrow lands on the wire span, and a new arrow
    // leaves it toward the receiving node's remote-store span.
    trace->record_flow_finish(event.ctx, t0, kNetLane);
    TraceCollector::Span span;
    span.name = "wire->" + target;
    span.start_ns = t0;
    span.duration_ns = t1 - t0;
    span.thread_id = kNetLane;
    span.age = event.age;
    span.bodies = 1;
    span.kind = SpanKind::kWire;
    span.trace_id = wire.trace_id;
    span.span_id = wire.span_id;
    span.parent_span = event.ctx.span_id;
    trace->record(std::move(span));
    trace->record_flow_start(wire, t1, kNetLane);
  }
  if (FlightRecorder* flight = runtime_->flight()) {
    flight->record("wire", SpanKind::kWire, t0, t1 - t0, kNetLane,
                   event.ctx, wire.span_id, event.age);
  }
}

void ExecutionNode::announce(const std::string& master_endpoint) {
  master_endpoint_ = master_endpoint;
  TopologyReport report;
  report.topology = graph::NodeTopology::local_machine(name_);
  Message message;
  message.type = MessageType::kTopologyReport;
  message.from = name_;
  message.payload = report.encode();
  bus_.send(master_endpoint, std::move(message));
}

std::vector<uint8_t> ExecutionNode::encode_store_payload(
    const StoreEvent& event) {
  RemoteStore remote;
  remote.field = event.field;
  remote.age = event.age;
  remote.region = event.region;
  remote.producer = event.producer;
  remote.store_decl = static_cast<uint32_t>(event.store_decl);
  remote.whole = event.whole;
  // Pull the freshly written payload back out of local storage.
  const nd::AnyBuffer data =
      runtime_->storage(event.field).fetch(event.age, event.region);
  const auto* raw = reinterpret_cast<const uint8_t*>(data.raw());
  remote.payload.assign(
      raw, raw + static_cast<size_t>(data.element_count()) *
                     nd::element_size(data.type()));
  return remote.encode();
}

void ExecutionNode::forward_store(const StoreEvent& event) {
  // Cheap pre-check without the lock; the authoritative read is below.
  if (!ft_.enabled &&
      forward_targets_[static_cast<size_t>(event.field)].empty()) {
    return;
  }

  if (!ft_.enabled) {
    // Offer each target to the data plane first; only targets it declines
    // fall back to the serialized message path (and only then is the
    // payload pulled back out of storage and encoded).
    const auto& targets =
        forward_targets_[static_cast<size_t>(event.field)];
    std::vector<const std::string*> wire_targets;
    for (const std::string& target : targets) {
      if (forwarder_ != nullptr && forwarder_->forward(event, target)) {
        stores_sent_.fetch_add(1);
        continue;
      }
      wire_targets.push_back(&target);
    }
    if (wire_targets.empty()) return;
    Message message;
    message.type = MessageType::kRemoteStore;
    message.from = name_;
    message.payload = encode_store_payload(event);
    for (const std::string* target : wire_targets) {
      stores_sent_.fetch_add(1);
      int64_t t0 = 0;
      const TraceContext wire = begin_wire_span(event, &t0);
      message.trace = wire;
      bus_.send(*target, message);
      end_wire_span(event, wire, *target, t0);
    }
    return;
  }

  std::vector<uint8_t> payload = encode_store_payload(event);

  // FT mode: log the payload for failover replay, then send reliably. The
  // log append and the target snapshot happen under the same lock a
  // reassignment takes, so every store reaches every current target.
  std::scoped_lock lock(forward_mutex_);
  store_log_.emplace_back(event.field, payload);
  for (const std::string& target :
       forward_targets_[static_cast<size_t>(event.field)]) {
    stores_sent_.fetch_add(1);
    int64_t t0 = 0;
    const TraceContext wire = begin_wire_span(event, &t0);
    channel_->send(target, MessageType::kRemoteStore, payload, wire);
    end_wire_span(event, wire, target, t0);
  }
}

void ExecutionNode::apply_remote_store(const Message& message) {
  // A traced message carries {frame id, sending wire span}; the apply
  // becomes a remote-store span parented on that wire span, and whatever
  // work the injected event triggers is parented on the apply.
  const bool traced =
      message.trace.valid() &&
      (runtime_->trace() != nullptr || runtime_->flight() != nullptr);
  const int64_t t0 = traced ? now_ns() : 0;
  const RemoteStore remote = RemoteStore::decode(message.payload);
  const Program& prog = runtime_->program();
  if (remote.field < 0 ||
      static_cast<size_t>(remote.field) >= prog.fields().size()) {
    throw_error(ErrorKind::kProtocol, "remote store for unknown field id " +
                                          std::to_string(remote.field));
  }
  const size_t element_bytes =
      nd::element_size(prog.field(remote.field).type);
  if (remote.payload.size() !=
      static_cast<size_t>(remote.region.element_count()) * element_bytes) {
    throw_error(ErrorKind::kProtocol,
                "remote store payload size does not match its region");
  }
  TraceContext recv;
  if (traced) {
    recv = TraceContext{message.trace.trace_id, runtime_->next_span_id()};
  }
  const int64_t fresh = runtime_->inject_store(
      remote.field, remote.age, remote.region, remote.producer,
      remote.store_decl, remote.whole,
      reinterpret_cast<const std::byte*>(remote.payload.data()),
      /*fill=*/ft_.enabled, recv);
  stores_received_.fetch_add(1);
  if (!traced) return;
  const int64_t t1 = now_ns();
  if (TraceCollector* trace = runtime_->mutable_trace()) {
    trace->record_flow_finish(message.trace, t0, kNetLane);
    TraceCollector::Span span;
    span.name = "recv:" + prog.field(remote.field).name;
    span.start_ns = t0;
    span.duration_ns = t1 - t0;
    span.thread_id = kNetLane;
    span.age = remote.age;
    span.bodies = 1;
    span.kind = SpanKind::kRemoteStore;
    span.trace_id = recv.trace_id;
    span.span_id = recv.span_id;
    span.parent_span = message.trace.span_id;
    trace->record(std::move(span));
    // Duplicate fill applies push no event, so nothing downstream will
    // ever pick this flow up — skip the dangling arrow.
    if (fresh > 0) trace->record_flow_start(recv, t1, kNetLane);
  }
  if (FlightRecorder* flight = runtime_->flight()) {
    flight->record("recv", SpanKind::kRemoteStore, t0, t1 - t0, kNetLane,
                   message.trace, recv.span_id, remote.age);
  }
}

void ExecutionNode::set_store_forwarder(StoreForwarder* forwarder) {
  check_argument(!ft_.enabled,
                 "store forwarder requires non-FT mode (the reliable "
                 "channel owns the FT data plane)");
  forwarder_ = forwarder;
}

std::vector<FieldId> ExecutionNode::forwarded_fields() const {
  std::vector<FieldId> fields;
  for (size_t i = 0; i < forward_targets_.size(); ++i) {
    if (!forward_targets_[i].empty()) {
      fields.push_back(static_cast<FieldId>(i));
    }
  }
  return fields;
}

void ExecutionNode::apply_plane_store(FieldId field, Age age,
                                      const nd::Region& region,
                                      KernelId producer, uint32_t store_decl,
                                      bool whole, const nd::ConstView& view,
                                      bool* adopted) {
  const Program& prog = runtime_->program();
  if (field < 0 || static_cast<size_t>(field) >= prog.fields().size()) {
    throw_error(ErrorKind::kProtocol, "plane store for unknown field id " +
                                          std::to_string(field));
  }
  if (view.type() != prog.field(field).type) {
    throw_error(ErrorKind::kProtocol,
                "plane store element type does not match the field");
  }
  runtime_->inject_store_view(field, age, region, producer, store_decl,
                              whole, view, adopted);
  stores_received_.fetch_add(1);
}

void ExecutionNode::apply_reassign(const ReassignMsg& reassign) {
  // Recovery span: the window in which this node rebuilds forwarding
  // state and replays its store log. Gap time overlapping it on this
  // node is attributed to the "recovery" critical-path bucket.
  const bool traced =
      runtime_->trace() != nullptr || runtime_->flight() != nullptr;
  const int64_t t0 = traced ? now_ns() : 0;
  std::vector<std::string> newly_owned;
  {
    std::scoped_lock lock(forward_mutex_);
    for (const auto& [kernel, owner] : reassign.kernels) {
      kernel_owner_[kernel] = owner;
      if (owner == name_) newly_owned.push_back(kernel);
    }
    // Rebuild the forwarding map against the new ownership; replay the
    // store log to every target that just appeared, and stop forwarding
    // into the dead node's closed mailbox.
    const Program& prog = runtime_->program();
    for (const FieldDecl& f : prog.fields()) {
      std::vector<std::string>& targets =
          forward_targets_[static_cast<size_t>(f.id)];
      targets.erase(
          std::remove(targets.begin(), targets.end(), reassign.dead),
          targets.end());
      for (const Program::Use& use : prog.consumers_of(f.id)) {
        const auto it = kernel_owner_.find(prog.kernel(use.kernel).name);
        if (it == kernel_owner_.end()) continue;
        const std::string& owner = it->second;
        if (owner == name_ || owner == reassign.dead) continue;
        if (std::find(targets.begin(), targets.end(), owner) !=
            targets.end()) {
          continue;
        }
        targets.push_back(owner);
        for (const auto& [field, payload] : store_log_) {
          if (field != f.id) continue;
          stores_sent_.fetch_add(1);
          channel_->send(owner, MessageType::kRemoteStore, payload);
        }
      }
    }
  }
  channel_->abandon_peer(reassign.dead);
  // Inherited kernels: the analyzer re-enables them and re-enumerates
  // their instances from surviving field data (deterministic
  // re-execution; idempotent stores absorb partially surviving results).
  for (const std::string& kernel : newly_owned) {
    runtime_->enable_kernel(kernel);
  }
  if (!traced) return;
  const int64_t t1 = now_ns();
  const uint64_t span_id = runtime_->next_span_id();
  if (TraceCollector* trace = runtime_->mutable_trace()) {
    TraceCollector::Span span;
    span.name = "reassign:" + reassign.dead;
    span.start_ns = t0;
    span.duration_ns = t1 - t0;
    span.thread_id = kNetLane;
    span.age = 0;
    span.bodies = static_cast<int64_t>(reassign.kernels.size());
    span.kind = SpanKind::kRecovery;
    span.span_id = span_id;
    trace->record(std::move(span));
  }
  if (FlightRecorder* flight = runtime_->flight()) {
    flight->record("reassign", SpanKind::kRecovery, t0, t1 - t0, kNetLane,
                   TraceContext{}, span_id);
  }
}

void ExecutionNode::start() {
  runtime_thread_ = std::thread([this] {
    try {
      report_ = runtime_->run();
    } catch (...) {
      error_ = std::current_exception();
    }
  });
  receiver_thread_ = std::thread([this] { receiver_loop(); });
  if (ft_.enabled) {
    heartbeat_thread_ = std::thread([this] { heartbeat_loop(); });
  }
}

void ExecutionNode::receiver_loop() {
  while (auto message = mailbox_->pop()) {
    try {
      switch (message->type) {
        case MessageType::kRemoteStore:
          // Direct (non-FT) forwards, or checkpoint restores replayed by
          // the master over its (chaos-exempt) control link.
          apply_remote_store(*message);
          break;
        case MessageType::kData: {
          if (!channel_) {
            P2G_WARN << "node " << name_ << ": kData without FT mode";
            break;
          }
          const std::string from = message->from;
          for (const Message& inner : channel_->on_data(*message)) {
            if (inner.type == MessageType::kRemoteStore) {
              apply_remote_store(inner);
            } else {
              P2G_WARN << "node " << name_
                       << ": unexpected inner message type";
            }
          }
          // Ack only after the data landed in field storage: the sender's
          // unacked count reaching zero then proves the data is applied
          // (the master's quiescence check builds on this).
          channel_->ack(from);
          break;
        }
        case MessageType::kAck:
          if (channel_) channel_->on_ack(*message);
          break;
        case MessageType::kReassign:
          if (channel_) {
            apply_reassign(ReassignMsg::decode(message->payload));
          }
          break;
        case MessageType::kIdleProbe: {
          // Out-of-process quiescence: the supervisor cannot inspect this
          // node's runtime directly, so it probes and we answer with our
          // idleness and message-conservation counters.
          IdleReport idle;
          idle.idle = runtime_->idle() && mailbox_->empty() &&
                      channel_unacked() == 0;
          idle.stores_sent = stores_sent_.load();
          idle.stores_received = stores_received_.load();
          Message reply;
          reply.type = MessageType::kIdleReport;
          reply.from = name_;
          reply.payload = idle.encode();
          bus_.send(master_endpoint_.empty() ? message->from
                                             : master_endpoint_,
                    std::move(reply));
          break;
        }
        case MessageType::kShutdown:
          runtime_->stop();
          return;
        default:
          P2G_WARN << "node " << name_ << ": unexpected message type";
          break;
      }
    } catch (...) {
      if (!error_) error_ = std::current_exception();
      runtime_->stop();
      return;
    }
  }
}

void ExecutionNode::heartbeat_loop() {
  int64_t beat = 0;
  std::unique_lock lock(hb_mutex_);
  while (!hb_stop_ && !crashed_.load()) {
    hb_cv_.wait_for(lock,
                    std::chrono::milliseconds(ft_.heartbeat_period_ms),
                    [&] { return hb_stop_ || crashed_.load(); });
    if (hb_stop_ || crashed_.load()) return;
    lock.unlock();

    ++beat;
    HeartbeatMsg hb;
    hb.seq = beat;
    hb.sent_ns = now_ns();
    Message message;
    message.type = MessageType::kHeartbeat;
    message.from = name_;
    message.payload = hb.encode();
    bus_.send(master_endpoint_, std::move(message));

    if (ft_.checkpoint_every_beats > 0 &&
        beat % ft_.checkpoint_every_beats == 0) {
      ship_checkpoints();
      // Periodic telemetry snapshot: if this node crashes mid-run, the
      // master still holds its last shipped snapshot (the final one from
      // join() simply overwrites it on survivors).
      ship_metrics();
    }
    lock.lock();
  }
}

void ExecutionNode::ship_metrics() {
  if (master_endpoint_.empty() || runtime_->metrics() == nullptr) return;
  MetricsReport metrics;
  metrics.node = name_;
  metrics.snapshot = runtime_->metrics_snapshot();
  if (channel_) {
    // Append the reliable-channel counters to the shipped copy (not the
    // live registry — this runs repeatedly and must not accumulate).
    const ft::ReliableChannel::Stats s = channel_->stats();
    auto add = [&](const char* counter, int64_t value) {
      metrics.snapshot.counters.push_back(
          obs::CounterValue{counter, value});
    };
    add("ft_data_sent_total", s.data_sent);
    add("ft_retransmits_total", s.retransmits);
    add("ft_duplicates_dropped_total", s.duplicates_dropped);
    add("ft_acks_sent_total", s.acks_sent);
  }
  Message message;
  message.type = MessageType::kMetricsReport;
  message.from = name_;
  message.payload = metrics.encode();
  bus_.send(master_endpoint_, std::move(message));
}

void ExecutionNode::ship_checkpoints() {
  // Fields this node's kernels produce (under the ownership lock — a
  // reassignment may have just widened the set).
  std::set<FieldId> produced;
  const Program& prog = runtime_->program();
  {
    std::scoped_lock lock(forward_mutex_);
    for (const KernelDef& k : prog.kernels()) {
      const auto it = kernel_owner_.find(k.name);
      if (it == kernel_owner_.end() || it->second != name_) continue;
      for (const StoreDecl& s : k.stores) produced.insert(s.field);
    }
  }
  for (const FieldId field : produced) {
    FieldStorage& storage = runtime_->storage(field);
    for (const Age age : storage.live_ages()) {
      if (!storage.is_complete(age) || checkpointed_.count({field, age})) {
        continue;
      }
      const nd::AnyBuffer data = storage.fetch_whole(age);
      RemoteStore snapshot;
      snapshot.field = field;
      snapshot.age = age;
      snapshot.region = nd::Region::whole(data.extents());
      snapshot.producer = kInvalidKernel;  // restores skip seal accounting
      snapshot.store_decl = 0;
      snapshot.whole = true;
      const auto* raw = reinterpret_cast<const uint8_t*>(data.raw());
      snapshot.payload.assign(
          raw, raw + static_cast<size_t>(data.element_count()) *
                         nd::element_size(data.type()));
      Message message;
      message.type = MessageType::kCheckpoint;
      message.from = name_;
      message.payload = snapshot.encode();
      bus_.send(master_endpoint_, std::move(message));
      checkpointed_.insert({field, age});
    }
  }
}

void ExecutionNode::crash() {
  if (crashed_.exchange(true)) return;
  // Postmortem first: the flight recorder's rings hold the node's last
  // spans; the dump is the artifact the master stitches into the merged
  // trace. Best-effort file I/O, no thread joins (this may run on the
  // crashing node's own send path).
  flight_dump_path_ = runtime_->dump_flight();
  hb_cv_.notify_all();
  runtime_->stop();
}

bool ExecutionNode::idle() const { return runtime_->idle(); }

int64_t ExecutionNode::channel_unacked() const {
  return channel_ ? channel_->unacked() : 0;
}

ft::ReliableChannel::Stats ExecutionNode::channel_stats() const {
  return channel_ ? channel_->stats() : ft::ReliableChannel::Stats{};
}

void ExecutionNode::join() {
  if (runtime_thread_.joinable()) runtime_thread_.join();
  {
    std::scoped_lock lock(hb_mutex_);
    hb_stop_ = true;
  }
  hb_cv_.notify_all();
  if (heartbeat_thread_.joinable()) heartbeat_thread_.join();
  if (channel_) channel_->stop();

  // The runtime has drained: ship the node's final telemetry to the
  // master over the wire (the paper's profile feedback, now with
  // distributions). This overwrites any periodic snapshot the master
  // holds. Crashed nodes are fenced off the bus and ship nothing — their
  // last periodic snapshot survives on the master.
  if (!crashed_.load()) ship_metrics();
  mailbox_->close();
  if (receiver_thread_.joinable()) receiver_thread_.join();
  if (error_ && !crashed_.load()) std::rethrow_exception(error_);
}

}  // namespace p2g::dist
