#include "dist/exec_node.h"

#include <algorithm>

#include "common/error.h"
#include "common/logging.h"

namespace p2g::dist {

ExecutionNode::ExecutionNode(
    std::string name, Program program,
    const std::map<std::string, std::string>& kernel_owner, MessageBus& bus,
    RunOptions base_options)
    : name_(std::move(name)), bus_(bus) {
  mailbox_ = bus_.register_endpoint(name_);

  // Enable only this node's kernels.
  RunOptions options = std::move(base_options);
  options.keep_alive = true;
  for (const KernelDef& k : program.kernels()) {
    const auto it = kernel_owner.find(k.name);
    check_argument(it != kernel_owner.end(),
                   "kernel '" + k.name + "' has no owner");
    if (it->second != name_) {
      options.disabled_kernels.insert(k.name);
    }
  }

  // Forwarding map: for every field, the remote nodes hosting consumers.
  forward_targets_.resize(program.fields().size());
  for (const FieldDecl& f : program.fields()) {
    std::vector<std::string>& targets =
        forward_targets_[static_cast<size_t>(f.id)];
    for (const Program::Use& use : program.consumers_of(f.id)) {
      const std::string& owner =
          kernel_owner.at(program.kernel(use.kernel).name);
      if (owner != name_ &&
          std::find(targets.begin(), targets.end(), owner) ==
              targets.end()) {
        targets.push_back(owner);
      }
    }
  }

  options.store_tap = [this](const StoreEvent& event) {
    forward_store(event);
  };

  runtime_ = std::make_unique<Runtime>(std::move(program),
                                       std::move(options));
}

void ExecutionNode::announce(const std::string& master_endpoint) {
  master_endpoint_ = master_endpoint;
  TopologyReport report;
  report.topology = graph::NodeTopology::local_machine(name_);
  Message message;
  message.type = MessageType::kTopologyReport;
  message.from = name_;
  message.payload = report.encode();
  bus_.send(master_endpoint, std::move(message));
}

void ExecutionNode::forward_store(const StoreEvent& event) {
  const auto& targets = forward_targets_[static_cast<size_t>(event.field)];
  if (targets.empty()) return;

  RemoteStore remote;
  remote.field = event.field;
  remote.age = event.age;
  remote.region = event.region;
  remote.producer = event.producer;
  remote.store_decl = static_cast<uint32_t>(event.store_decl);
  remote.whole = event.whole;
  // Pull the freshly written payload back out of local storage.
  const nd::AnyBuffer data =
      runtime_->storage(event.field).fetch(event.age, event.region);
  const auto* raw = reinterpret_cast<const uint8_t*>(data.raw());
  remote.payload.assign(
      raw, raw + static_cast<size_t>(data.element_count()) *
                     nd::element_size(data.type()));

  Message message;
  message.type = MessageType::kRemoteStore;
  message.from = name_;
  message.payload = remote.encode();
  for (const std::string& target : targets) {
    stores_sent_.fetch_add(1);
    bus_.send(target, message);
  }
}

void ExecutionNode::start() {
  runtime_thread_ = std::thread([this] {
    try {
      report_ = runtime_->run();
    } catch (...) {
      error_ = std::current_exception();
    }
  });
  receiver_thread_ = std::thread([this] { receiver_loop(); });
}

void ExecutionNode::receiver_loop() {
  while (auto message = mailbox_->pop()) {
    try {
      switch (message->type) {
        case MessageType::kRemoteStore: {
          const RemoteStore remote = RemoteStore::decode(message->payload);
          runtime_->inject_store(
              remote.field, remote.age, remote.region, remote.producer,
              remote.store_decl, remote.whole,
              reinterpret_cast<const std::byte*>(remote.payload.data()));
          stores_received_.fetch_add(1);
          break;
        }
        case MessageType::kShutdown:
          runtime_->stop();
          return;
        default:
          P2G_WARN << "node " << name_ << ": unexpected message type";
          break;
      }
    } catch (...) {
      if (!error_) error_ = std::current_exception();
      runtime_->stop();
      return;
    }
  }
}

bool ExecutionNode::idle() const { return runtime_->idle(); }

void ExecutionNode::join() {
  if (runtime_thread_.joinable()) runtime_thread_.join();
  // The runtime has drained: ship the node's telemetry to the master over
  // the wire (the paper's profile feedback, now with distributions).
  if (!master_endpoint_.empty() && runtime_->metrics() != nullptr) {
    MetricsReport metrics;
    metrics.node = name_;
    metrics.snapshot = runtime_->metrics_snapshot();
    Message message;
    message.type = MessageType::kMetricsReport;
    message.from = name_;
    message.payload = metrics.encode();
    bus_.send(master_endpoint_, std::move(message));
  }
  mailbox_->close();
  if (receiver_thread_.joinable()) receiver_thread_.join();
  if (error_) std::rethrow_exception(error_);
}

}  // namespace p2g::dist
