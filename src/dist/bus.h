// In-process message bus: the simulated cluster interconnect.
//
// The paper's data distribution uses an event-based, distributed
// publish-subscribe model with direct communication between nodes (§IV).
// This bus gives every registered endpoint a mailbox; senders address
// endpoints by name or broadcast. In-process, but all payloads cross the
// "wire" as serialized bytes.
//
// Since ISSUE 10 the bus is one implementation of the pluggable
// net::Transport interface; the socket/shared-memory backends in src/net
// carry the same contract between real OS processes, and the
// fault-tolerance layer (src/ft) decorates any Transport with a ChaosBus
// that drops, duplicates, delays, and reorders traffic according to a
// seeded FaultPlan.
#pragma once

#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <string>

#include "common/blocking_queue.h"
#include "dist/message.h"
#include "net/transport.h"

namespace p2g::dist {

// Historic spellings — the transport vocabulary moved to net:: when the bus
// became one backend among several. Existing call sites keep compiling.
using SendStatus = net::SendStatus;
using EndpointStats = net::EndpointStats;
using BusStats = net::BusStats;

class MessageBus : public net::Transport {
 public:
  /// A registered endpoint's mailbox.
  using Mailbox = net::Transport::Mailbox;

  ~MessageBus() override = default;

  /// Registers an endpoint; the returned mailbox lives as long as the bus.
  std::shared_ptr<Mailbox> register_endpoint(const std::string& name) override;

  /// Sends to one endpoint. Unknown destinations still throw kProtocol
  /// (that is a wiring bug, not a runtime failure); closed/dead
  /// destinations return a failure status and count as dead letters.
  SendStatus send(const std::string& to, Message message) override;

  /// Sends to every live endpoint except the sender. Returns the number of
  /// endpoints the message was actually delivered to (0 once closed).
  int broadcast(Message message) override;

  /// Closes every mailbox (shutdown). Subsequent sends return kClosed.
  void close_all() override;

  /// Declares an endpoint failed: its mailbox is closed and all further
  /// traffic to it is blackholed (kDead). Models fencing a crashed node.
  void mark_dead(const std::string& name) override;

  /// True if `name` was declared failed via mark_dead().
  bool is_dead(const std::string& name) const override;

  /// True when a send to `to` cannot succeed (bus closed or endpoint
  /// dead). The chaos layer checks this *before* reaching a fault verdict
  /// so that crash timing never perturbs the verdict stream of live links.
  bool unreachable(const std::string& to) const override;

  /// Messages delivered so far (diagnostics).
  int64_t delivered() const override;

  /// Message/byte counters, total and per destination endpoint.
  BusStats stats() const override;

 protected:
  /// Delivery primitive shared by send() and broadcast(): resolves the
  /// destination, applies closed/dead checks, updates counters, and
  /// enqueues.
  SendStatus deliver(const std::string& to, Message message);

 private:
  mutable sync::Mutex mutex_{"MessageBus.mutex"};
  std::map<std::string, std::shared_ptr<Mailbox>> endpoints_;
  std::set<std::string> dead_;
  bool closed_ = false;
  BusStats stats_;
};

}  // namespace p2g::dist
