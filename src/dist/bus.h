// In-process message bus: the simulated cluster interconnect.
//
// The paper's data distribution uses an event-based, distributed
// publish-subscribe model with direct communication between nodes (§IV).
// This bus gives every registered endpoint a mailbox; senders address
// endpoints by name or broadcast. In-process, but all payloads cross the
// "wire" as serialized bytes.
//
// send()/broadcast() are virtual so the fault-tolerance layer (src/ft)
// can interpose a ChaosBus decorator that drops, duplicates, delays, and
// reorders traffic according to a seeded FaultPlan.
#pragma once

#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <string>

#include "common/blocking_queue.h"
#include "dist/message.h"

namespace p2g::dist {

/// Outcome of a send() attempt. Delivery failure is a normal, queryable
/// result — a distributed sender must be able to observe "the other side is
/// gone" without an exception tearing down its worker thread.
enum class SendStatus : uint8_t {
  kDelivered = 0,  ///< enqueued into the destination mailbox
  kClosed = 1,     ///< bus already shut down (close_all() ran)
  kDead = 2,       ///< destination declared failed (mark_dead())
  kDropped = 3,    ///< chaos layer discarded the message
};

/// Traffic counters of one bus endpoint (destination side).
struct EndpointStats {
  int64_t messages = 0;
  int64_t bytes = 0;  ///< payload bytes delivered to this endpoint
};

/// Bus-wide traffic snapshot: the interconnect view the paper's HLS would
/// consult when weighing edge cuts against link capacity.
struct BusStats {
  int64_t delivered = 0;
  int64_t bytes = 0;
  /// Messages addressed to closed or dead endpoints (delivery failures).
  int64_t dead_letters = 0;
  /// Per destination endpoint.
  std::map<std::string, EndpointStats> per_endpoint;
};

class MessageBus {
 public:
  /// A registered endpoint's mailbox.
  using Mailbox = BlockingQueue<Message>;

  virtual ~MessageBus() = default;

  /// Registers an endpoint; the returned mailbox lives as long as the bus.
  std::shared_ptr<Mailbox> register_endpoint(const std::string& name);

  /// Sends to one endpoint. Unknown destinations still throw kProtocol
  /// (that is a wiring bug, not a runtime failure); closed/dead
  /// destinations return a failure status and count as dead letters.
  virtual SendStatus send(const std::string& to, Message message);

  /// Sends to every live endpoint except the sender. Returns the number of
  /// endpoints the message was actually delivered to (0 once closed).
  virtual int broadcast(Message message);

  /// Closes every mailbox (shutdown). Subsequent sends return kClosed.
  void close_all();

  /// Declares an endpoint failed: its mailbox is closed and all further
  /// traffic to it is blackholed (kDead). Models fencing a crashed node.
  void mark_dead(const std::string& name);

  /// True if `name` was declared failed via mark_dead().
  bool is_dead(const std::string& name) const;

  /// Messages delivered so far (diagnostics).
  int64_t delivered() const;

  /// Message/byte counters, total and per destination endpoint.
  BusStats stats() const;

 protected:
  /// Delivery primitive shared by send(), broadcast(), and the chaos
  /// layer's wire thread: resolves the destination, applies closed/dead
  /// checks, updates counters, and enqueues.
  SendStatus deliver(const std::string& to, Message message);

  /// True when a send to `to` cannot succeed (bus closed or endpoint
  /// dead). The chaos layer checks this *before* reaching a fault verdict
  /// so that crash timing never perturbs the verdict stream of live links.
  bool unreachable(const std::string& to) const;

 private:
  mutable sync::Mutex mutex_{"MessageBus.mutex"};
  std::map<std::string, std::shared_ptr<Mailbox>> endpoints_;
  std::set<std::string> dead_;
  bool closed_ = false;
  BusStats stats_;
};

}  // namespace p2g::dist
