// In-process message bus: the simulated cluster interconnect.
//
// The paper's data distribution uses an event-based, distributed
// publish-subscribe model with direct communication between nodes (§IV).
// This bus gives every registered endpoint a mailbox; senders address
// endpoints by name or broadcast. In-process, but all payloads cross the
// "wire" as serialized bytes.
#pragma once

#include <map>
#include <memory>
#include <mutex>
#include <string>

#include "common/blocking_queue.h"
#include "dist/message.h"

namespace p2g::dist {

class MessageBus {
 public:
  /// A registered endpoint's mailbox.
  using Mailbox = BlockingQueue<Message>;

  /// Registers an endpoint; the returned mailbox lives as long as the bus.
  std::shared_ptr<Mailbox> register_endpoint(const std::string& name);

  /// Sends to one endpoint. Throws kProtocol for unknown destinations.
  void send(const std::string& to, Message message);

  /// Sends to every endpoint except the sender.
  void broadcast(Message message);

  /// Closes every mailbox (shutdown).
  void close_all();

  /// Messages delivered so far (diagnostics).
  int64_t delivered() const;

 private:
  mutable std::mutex mutex_;
  std::map<std::string, std::shared_ptr<Mailbox>> endpoints_;
  int64_t delivered_ = 0;
};

}  // namespace p2g::dist
