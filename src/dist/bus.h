// In-process message bus: the simulated cluster interconnect.
//
// The paper's data distribution uses an event-based, distributed
// publish-subscribe model with direct communication between nodes (§IV).
// This bus gives every registered endpoint a mailbox; senders address
// endpoints by name or broadcast. In-process, but all payloads cross the
// "wire" as serialized bytes.
#pragma once

#include <map>
#include <memory>
#include <mutex>
#include <string>

#include "common/blocking_queue.h"
#include "dist/message.h"

namespace p2g::dist {

/// Traffic counters of one bus endpoint (destination side).
struct EndpointStats {
  int64_t messages = 0;
  int64_t bytes = 0;  ///< payload bytes delivered to this endpoint
};

/// Bus-wide traffic snapshot: the interconnect view the paper's HLS would
/// consult when weighing edge cuts against link capacity.
struct BusStats {
  int64_t delivered = 0;
  int64_t bytes = 0;
  /// Per destination endpoint.
  std::map<std::string, EndpointStats> per_endpoint;
};

class MessageBus {
 public:
  /// A registered endpoint's mailbox.
  using Mailbox = BlockingQueue<Message>;

  /// Registers an endpoint; the returned mailbox lives as long as the bus.
  std::shared_ptr<Mailbox> register_endpoint(const std::string& name);

  /// Sends to one endpoint. Throws kProtocol for unknown destinations.
  void send(const std::string& to, Message message);

  /// Sends to every endpoint except the sender.
  void broadcast(Message message);

  /// Closes every mailbox (shutdown).
  void close_all();

  /// Messages delivered so far (diagnostics).
  int64_t delivered() const;

  /// Message/byte counters, total and per destination endpoint.
  BusStats stats() const;

 private:
  mutable std::mutex mutex_;
  std::map<std::string, std::shared_ptr<Mailbox>> endpoints_;
  BusStats stats_;
};

}  // namespace p2g::dist
