#include "graph/partition.h"

#include <algorithm>
#include <limits>
#include <numeric>

#include "common/error.h"

namespace p2g::graph {

double Partition::cut_weight(const FinalGraph& graph) const {
  double cut = 0.0;
  for (const FinalGraph::Edge& e : graph.edges) {
    if (e.from == e.to) continue;  // self-loops (aging cycles) never cut
    if (assignment[static_cast<size_t>(e.from)] !=
        assignment[static_cast<size_t>(e.to)]) {
      cut += e.weight;
    }
  }
  return cut;
}

std::vector<double> Partition::part_weights(const FinalGraph& graph) const {
  std::vector<double> weights(static_cast<size_t>(parts), 0.0);
  for (size_t i = 0; i < assignment.size(); ++i) {
    weights[static_cast<size_t>(assignment[i])] += graph.node_weights[i];
  }
  return weights;
}

double Partition::imbalance(const FinalGraph& graph) const {
  const std::vector<double> weights = part_weights(graph);
  const double total =
      std::accumulate(weights.begin(), weights.end(), 0.0);
  if (total == 0.0) return 1.0;
  const double ideal = total / static_cast<double>(parts);
  return *std::max_element(weights.begin(), weights.end()) / ideal;
}

Partition greedy_partition(const FinalGraph& graph, int parts) {
  check_argument(parts >= 1, "parts must be >= 1");
  const size_t n = graph.kernel_count();
  Partition partition;
  partition.parts = parts;
  partition.assignment.assign(n, -1);

  if (parts == 1 || n == 0) {
    std::fill(partition.assignment.begin(), partition.assignment.end(), 0);
    return partition;
  }

  // Undirected adjacency with accumulated edge weights.
  std::vector<std::vector<std::pair<size_t, double>>> adjacency(n);
  for (const FinalGraph::Edge& e : graph.edges) {
    if (e.from == e.to) continue;
    adjacency[static_cast<size_t>(e.from)].emplace_back(
        static_cast<size_t>(e.to), e.weight);
    adjacency[static_cast<size_t>(e.to)].emplace_back(
        static_cast<size_t>(e.from), e.weight);
  }

  const double total = std::accumulate(graph.node_weights.begin(),
                                       graph.node_weights.end(), 0.0);
  const double budget = total / static_cast<double>(parts);

  // Kernel indices by decreasing weight (heavy seeds first).
  std::vector<size_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    return graph.node_weights[a] > graph.node_weights[b];
  });

  size_t next_seed = 0;
  for (int part = 0; part < parts; ++part) {
    // Seed: heaviest unassigned kernel.
    while (next_seed < n &&
           partition.assignment[order[next_seed]] != -1) {
      ++next_seed;
    }
    if (next_seed >= n) break;
    const size_t seed = order[next_seed];
    partition.assignment[seed] = part;
    double weight = graph.node_weights[seed];

    // Grow along the strongest frontier edge until the budget is reached.
    while (weight < budget) {
      double best_gain = -1.0;
      size_t best_node = n;
      for (size_t v = 0; v < n; ++v) {
        if (partition.assignment[v] != part) continue;
        for (const auto& [u, w] : adjacency[v]) {
          if (partition.assignment[u] != -1) continue;
          if (w > best_gain) {
            best_gain = w;
            best_node = u;
          }
        }
      }
      if (best_node == n) break;  // no frontier left
      partition.assignment[best_node] = part;
      weight += graph.node_weights[best_node];
    }
  }

  // Leftovers (disconnected kernels): lightest part wins.
  for (size_t v = 0; v < n; ++v) {
    if (partition.assignment[v] != -1) continue;
    const std::vector<double> weights = partition.part_weights(graph);
    // part_weights skips unassigned nodes only if assignment is valid;
    // temporarily treat -1 as part 0 is wrong, so compute manually:
    int lightest = 0;
    double lightest_weight = std::numeric_limits<double>::max();
    for (int p = 0; p < parts; ++p) {
      double pw = 0.0;
      for (size_t u = 0; u < n; ++u) {
        if (partition.assignment[u] == p) pw += graph.node_weights[u];
      }
      if (pw < lightest_weight) {
        lightest_weight = pw;
        lightest = p;
      }
    }
    partition.assignment[v] = lightest;
  }
  return partition;
}

void kl_refine(const FinalGraph& graph, Partition& partition, int max_passes,
               double max_imbalance) {
  const size_t n = graph.kernel_count();
  if (n == 0 || partition.parts <= 1) return;

  for (int pass = 0; pass < max_passes; ++pass) {
    bool improved = false;
    for (size_t v = 0; v < n; ++v) {
      const int current = partition.assignment[v];
      // Connection weight of v to each part.
      std::vector<double> connection(static_cast<size_t>(partition.parts),
                                     0.0);
      for (const FinalGraph::Edge& e : graph.edges) {
        if (e.from == e.to) continue;
        if (static_cast<size_t>(e.from) == v) {
          connection[static_cast<size_t>(
              partition.assignment[static_cast<size_t>(e.to)])] += e.weight;
        } else if (static_cast<size_t>(e.to) == v) {
          connection[static_cast<size_t>(partition.assignment[
              static_cast<size_t>(e.from)])] += e.weight;
        }
      }
      // Best target part by gain.
      int best_part = current;
      double best_gain = 0.0;
      for (int p = 0; p < partition.parts; ++p) {
        if (p == current) continue;
        const double gain = connection[static_cast<size_t>(p)] -
                            connection[static_cast<size_t>(current)];
        if (gain > best_gain) {
          best_gain = gain;
          best_part = p;
        }
      }
      if (best_part == current) continue;

      partition.assignment[v] = best_part;
      if (partition.imbalance(graph) > max_imbalance) {
        partition.assignment[v] = current;  // would unbalance, revert
      } else {
        improved = true;
      }
    }
    if (!improved) break;
  }
}

Partition partition_graph(const FinalGraph& graph, int parts) {
  Partition partition = greedy_partition(graph, parts);
  kl_refine(graph, partition);
  return partition;
}

}  // namespace p2g::graph
