#include "graph/static_graph.h"

#include <functional>
#include <map>
#include <sstream>

#include "common/error.h"

namespace p2g::graph {

IntermediateGraph IntermediateGraph::from_program(const Program& program) {
  IntermediateGraph g;
  for (const KernelDef& k : program.kernels()) {
    g.nodes.push_back(Node{Node::Kind::kKernel, k.id, k.name});
  }
  for (const FieldDecl& f : program.fields()) {
    g.nodes.push_back(Node{Node::Kind::kField, f.id, f.name});
  }
  for (const KernelDef& k : program.kernels()) {
    for (const FetchDecl& f : k.fetches) {
      g.edges.push_back(Edge{g.field_node(f.field), g.kernel_node(k.id),
                             f.age.kind == AgeExpr::Kind::kRelative
                                 ? f.age.value
                                 : 0});
    }
    for (const StoreDecl& s : k.stores) {
      g.edges.push_back(Edge{g.kernel_node(k.id), g.field_node(s.field),
                             s.age.kind == AgeExpr::Kind::kRelative
                                 ? s.age.value
                                 : 0});
    }
  }
  return g;
}

size_t IntermediateGraph::kernel_node(KernelId id) const {
  for (size_t i = 0; i < nodes.size(); ++i) {
    if (nodes[i].kind == Node::Kind::kKernel && nodes[i].id == id) return i;
  }
  internal_error("kernel node not found");
}

size_t IntermediateGraph::field_node(FieldId id) const {
  for (size_t i = 0; i < nodes.size(); ++i) {
    if (nodes[i].kind == Node::Kind::kField && nodes[i].id == id) return i;
  }
  internal_error("field node not found");
}

std::string IntermediateGraph::to_dot() const {
  std::ostringstream os;
  os << "digraph intermediate {\n";
  for (size_t i = 0; i < nodes.size(); ++i) {
    const bool kernel = nodes[i].kind == Node::Kind::kKernel;
    os << "  n" << i << " [label=\"" << nodes[i].name << "\", shape="
       << (kernel ? "box" : "ellipse") << "];\n";
  }
  for (const Edge& e : edges) {
    os << "  n" << e.from << " -> n" << e.to;
    if (e.age_offset != 0) {
      os << " [label=\"age+" << e.age_offset << "\"]";
    }
    os << ";\n";
  }
  os << "}\n";
  return os.str();
}

FinalGraph FinalGraph::from_program(const Program& program) {
  FinalGraph g;
  for (const KernelDef& k : program.kernels()) {
    g.kernel_names.push_back(k.name);
    g.node_weights.push_back(1.0);
  }
  // Merge through each field: every (producer store, consumer fetch) pair
  // becomes a direct kernel->kernel edge, deduplicated per field pair by
  // keeping the *minimum* age offset (the tightest dependency). Keeping
  // the first pair instead would let an aging pair shadow a zero-offset
  // pair between the same kernels and hide a zero-offset cycle.
  std::map<std::tuple<KernelId, KernelId, FieldId>, size_t> seen;
  for (const FieldDecl& f : program.fields()) {
    for (const Program::Use& producer : program.producers_of(f.id)) {
      const StoreDecl& s =
          program.kernel(producer.kernel).stores[producer.statement];
      for (const Program::Use& consumer : program.consumers_of(f.id)) {
        const FetchDecl& fd =
            program.kernel(consumer.kernel).fetches[consumer.statement];
        const int64_t offset =
            (s.age.kind == AgeExpr::Kind::kRelative ? s.age.value : 0) -
            (fd.age.kind == AgeExpr::Kind::kRelative ? fd.age.value : 0);
        const bool relative = s.age.kind == AgeExpr::Kind::kRelative &&
                              fd.age.kind == AgeExpr::Kind::kRelative;
        const auto key =
            std::make_tuple(producer.kernel, consumer.kernel, f.id);
        const auto it = seen.find(key);
        if (it == seen.end()) {
          seen.emplace(key, g.edges.size());
          g.edges.push_back(Edge{producer.kernel, consumer.kernel, f.id,
                                 offset, 1.0, relative});
        } else if (offset < g.edges[it->second].age_offset) {
          g.edges[it->second].age_offset = offset;
          g.edges[it->second].relative = relative;
        }
      }
    }
  }
  return g;
}

void FinalGraph::apply_instrumentation(const InstrumentationReport& report) {
  for (size_t i = 0; i < kernel_names.size(); ++i) {
    if (const KernelStats* stats = report.find(kernel_names[i])) {
      node_weights[i] =
          std::max(1.0, static_cast<double>(stats->kernel_ns) / 1e3);
    }
  }
  for (Edge& e : edges) {
    const KernelStats* stats =
        report.find(kernel_names[static_cast<size_t>(e.from)]);
    if (stats != nullptr) {
      e.weight = std::max(1.0, static_cast<double>(stats->instances));
    }
  }
}

bool FinalGraph::has_zero_offset_cycle() const {
  // DFS over zero-offset edges only.
  std::vector<std::vector<size_t>> adjacency(kernel_count());
  for (size_t i = 0; i < edges.size(); ++i) {
    if (edges[i].age_offset == 0) {
      adjacency[static_cast<size_t>(edges[i].from)].push_back(i);
    }
  }
  enum class State { kUnvisited, kInProgress, kDone };
  std::vector<State> state(kernel_count(), State::kUnvisited);
  bool cycle = false;
  std::function<void(size_t)> dfs = [&](size_t node) {
    state[node] = State::kInProgress;
    for (size_t ei : adjacency[node]) {
      const auto next = static_cast<size_t>(edges[ei].to);
      if (state[next] == State::kInProgress) {
        cycle = true;
      } else if (state[next] == State::kUnvisited) {
        dfs(next);
      }
      if (cycle) break;
    }
    state[node] = State::kDone;
  };
  for (size_t n = 0; n < kernel_count() && !cycle; ++n) {
    if (state[n] == State::kUnvisited) dfs(n);
  }
  return cycle;
}

std::string FinalGraph::to_dot() const {
  std::ostringstream os;
  os << "digraph final {\n";
  for (size_t i = 0; i < kernel_names.size(); ++i) {
    os << "  k" << i << " [label=\"" << kernel_names[i] << " ("
       << node_weights[i] << ")\", shape=box];\n";
  }
  for (const Edge& e : edges) {
    os << "  k" << e.from << " -> k" << e.to << " [label=\"w=" << e.weight;
    if (e.age_offset != 0) os << ", age+" << e.age_offset;
    os << "\"];\n";
  }
  os << "}\n";
  return os.str();
}

}  // namespace p2g::graph
