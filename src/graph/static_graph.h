// The implicit static dependency graphs of a P2G program (Figs. 2 and 3).
//
// The *intermediate* graph is bipartite: kernel vertices connect to field
// vertices through their store statements, fields connect to kernels
// through fetch statements. Merging the edges through each field vertex
// yields the *final* graph over kernels only — the input the high-level
// scheduler partitions across the topology (§IV). Instrumentation data
// weights the final graph for repartitioning.
#pragma once

#include <string>
#include <vector>

#include "core/instrumentation.h"
#include "core/program.h"

namespace p2g::graph {

/// Bipartite kernel/field graph (Fig. 2). Derived purely from the fetch
/// and store statements — no execution needed.
struct IntermediateGraph {
  struct Node {
    enum class Kind { kKernel, kField };
    Kind kind;
    int id;  ///< KernelId or FieldId
    std::string name;
  };
  struct Edge {
    size_t from;  ///< node index
    size_t to;    ///< node index
    /// Age offset of the statement (+1 edges close aging cycles).
    int64_t age_offset;
  };

  std::vector<Node> nodes;
  std::vector<Edge> edges;

  static IntermediateGraph from_program(const Program& program);

  size_t kernel_node(KernelId id) const;
  size_t field_node(FieldId id) const;

  /// Graphviz rendering (kernels as boxes, fields as ellipses).
  std::string to_dot() const;
};

/// Kernel-only graph with field vertices merged out (Fig. 3).
struct FinalGraph {
  struct Edge {
    KernelId from;
    KernelId to;
    FieldId via;          ///< the merged field
    int64_t age_offset;   ///< producer store offset minus consumer fetch
    double weight = 1.0;  ///< communication weight (instrumented traffic)
    /// True when both the store and the fetch use relative ages — the pair
    /// forms a per-age recurrence. Constant ages on either side touch one
    /// fixed age only and cannot carry an aging cycle.
    bool relative = true;
  };

  std::vector<std::string> kernel_names;  ///< indexed by KernelId
  std::vector<double> node_weights;       ///< compute weight per kernel
  std::vector<Edge> edges;

  static FinalGraph from_program(const Program& program);

  size_t kernel_count() const { return kernel_names.size(); }

  /// Weights nodes by total kernel time and edges by the producer's
  /// instance count (a proxy for traffic volume across the field), from a
  /// profiling run — the paper's "weighted final graph ... repartitioned".
  void apply_instrumentation(const InstrumentationReport& report);

  /// True when the graph has a directed cycle ignoring age offsets > 0
  /// (aging cycles are legal; a zero-offset cycle would deadlock).
  bool has_zero_offset_cycle() const;

  std::string to_dot() const;
};

}  // namespace p2g::graph
