#include "graph/topology.h"

#include <algorithm>
#include <numeric>
#include <sstream>
#include <thread>

#include "common/error.h"

namespace p2g::graph {

double NodeTopology::compute_capacity() const {
  double total = 0.0;
  for (const ProcessingUnit& unit : units) {
    total += unit.relative_speed;
  }
  return total;
}

NodeTopology NodeTopology::local_machine(const std::string& name) {
  NodeTopology node;
  node.name = name;
  unsigned cores = std::thread::hardware_concurrency();
  if (cores == 0) cores = 1;
  node.units.assign(cores, ProcessingUnit{});
  // A simple shared bus between all cores.
  for (size_t i = 1; i < node.units.size(); ++i) {
    node.buses.push_back(Link{0, i, 25600.0, 0.1});
  }
  return node;
}

void GlobalTopology::add_node(NodeTopology node) {
  for (NodeTopology& existing : nodes_) {
    if (existing.name == node.name) {
      existing = std::move(node);
      return;
    }
  }
  nodes_.push_back(std::move(node));
}

bool GlobalTopology::remove_node(const std::string& name) {
  for (size_t i = 0; i < nodes_.size(); ++i) {
    if (nodes_[i].name == name) {
      nodes_.erase(nodes_.begin() + static_cast<ptrdiff_t>(i));
      // Drop interconnects touching the node and fix up indices.
      std::vector<Link> kept;
      for (const Link& link : interconnects_) {
        if (link.a == i || link.b == i) continue;
        Link fixed = link;
        if (fixed.a > i) --fixed.a;
        if (fixed.b > i) --fixed.b;
        kept.push_back(fixed);
      }
      interconnects_ = std::move(kept);
      return true;
    }
  }
  return false;
}

void GlobalTopology::connect(size_t a, size_t b, double bandwidth_mbps,
                             double latency_us) {
  check_argument(a < nodes_.size() && b < nodes_.size() && a != b,
                 "invalid interconnect endpoints");
  interconnects_.push_back(Link{a, b, bandwidth_mbps, latency_us});
}

double GlobalTopology::total_compute() const {
  double total = 0.0;
  for (const NodeTopology& node : nodes_) {
    total += node.compute_capacity();
  }
  return total;
}

std::vector<size_t> GlobalTopology::place_partitions(
    const std::vector<double>& part_weights) const {
  check_argument(!nodes_.empty(), "cannot place on an empty topology");
  // Sort partitions by weight (descending) and nodes by capacity
  // (descending); assign round-robin so the heaviest work lands on the
  // fastest hardware.
  std::vector<size_t> part_order(part_weights.size());
  std::iota(part_order.begin(), part_order.end(), 0);
  std::sort(part_order.begin(), part_order.end(), [&](size_t x, size_t y) {
    return part_weights[x] > part_weights[y];
  });
  std::vector<size_t> node_order(nodes_.size());
  std::iota(node_order.begin(), node_order.end(), 0);
  std::sort(node_order.begin(), node_order.end(), [&](size_t x, size_t y) {
    return nodes_[x].compute_capacity() > nodes_[y].compute_capacity();
  });

  std::vector<size_t> placement(part_weights.size(), 0);
  std::vector<double> load(nodes_.size(), 0.0);
  for (const size_t part : part_order) {
    // Least-loaded node relative to its capacity.
    size_t best = node_order[0];
    double best_ratio = std::numeric_limits<double>::max();
    for (const size_t node : node_order) {
      const double capacity =
          std::max(1e-9, nodes_[node].compute_capacity());
      const double ratio = load[node] / capacity;
      if (ratio < best_ratio) {
        best_ratio = ratio;
        best = node;
      }
    }
    placement[part] = best;
    load[best] += part_weights[part];
  }
  return placement;
}

std::string GlobalTopology::to_dot() const {
  std::ostringstream os;
  os << "graph topology {\n";
  for (size_t i = 0; i < nodes_.size(); ++i) {
    os << "  node" << i << " [label=\"" << nodes_[i].name << " ("
       << nodes_[i].units.size() << " units, cap="
       << nodes_[i].compute_capacity() << ")\", shape=box];\n";
  }
  for (const Link& link : interconnects_) {
    os << "  node" << link.a << " -- node" << link.b << " [label=\""
       << link.bandwidth_mbps << " Mbps\"];\n";
  }
  os << "}\n";
  return os.str();
}

}  // namespace p2g::graph
