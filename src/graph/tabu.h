// Tabu-search partitioner (paper §IV, ref [14] — Glover's tabu search as
// the "search based" alternative to graph partitioning for the HLS).
//
// Local search over single-kernel moves with a recency-based tabu list and
// an aspiration criterion (a tabu move is allowed when it beats the best
// solution seen). The objective mixes cut weight and imbalance.
#pragma once

#include <cstdint>

#include "graph/partition.h"

namespace p2g::graph {

struct TabuOptions {
  int iterations = 500;
  int tenure = 12;              ///< moves stay tabu for this many rounds
  double imbalance_penalty = 2.0;
  uint64_t seed = 1;
};

/// Runs tabu search from a greedy initial partition; returns the best
/// partition found.
Partition tabu_partition(const FinalGraph& graph, int parts,
                         const TabuOptions& options = {});

}  // namespace p2g::graph
