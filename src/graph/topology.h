// The resource topology model (paper §IV, Fig. 1).
//
// Each execution node reports its local topology — a graph of multi-core
// and single-core CPUs and GPUs connected by buses — to the master node,
// which merges them into a global topology. The HLS uses the global
// topology to decide how many components to partition a workload into and
// where to place them; the topology changes at runtime as nodes join and
// leave.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace p2g::graph {

/// One processing unit inside an execution node.
struct ProcessingUnit {
  enum class Type { kCpuCore, kGpu, kDsp };
  Type type = Type::kCpuCore;
  /// Throughput relative to a reference CPU core (GPUs > 1 for data-
  /// parallel kernels).
  double relative_speed = 1.0;
};

/// Interconnect between two units of one node, or between nodes.
struct Link {
  size_t a = 0;
  size_t b = 0;
  double bandwidth_mbps = 1000.0;
  double latency_us = 10.0;
};

/// The local topology one execution node reports.
struct NodeTopology {
  std::string name;
  std::vector<ProcessingUnit> units;
  std::vector<Link> buses;  ///< indices into `units`
  double memory_gb = 1.0;

  double compute_capacity() const;

  /// Describes the machine this process runs on (CPU cores only).
  static NodeTopology local_machine(const std::string& name = "local");
};

/// The master's merged view of all execution nodes.
class GlobalTopology {
 public:
  /// Adds (or replaces, by name) a node's reported topology.
  void add_node(NodeTopology node);

  /// Removes a node when it leaves; false when unknown.
  bool remove_node(const std::string& name);

  const std::vector<NodeTopology>& nodes() const { return nodes_; }
  const std::vector<Link>& interconnects() const { return interconnects_; }

  /// Connects two nodes (by index) with a network link.
  void connect(size_t a, size_t b, double bandwidth_mbps,
               double latency_us);

  double total_compute() const;

  /// Suggested partition count: one component per execution node.
  int suggested_parts() const { return static_cast<int>(nodes_.size()); }

  /// Maps partition ids to node indices proportionally to compute
  /// capacity (heaviest partition to the fastest node). `part_weights`
  /// come from Partition::part_weights.
  std::vector<size_t> place_partitions(
      const std::vector<double>& part_weights) const;

  std::string to_dot() const;

 private:
  std::vector<NodeTopology> nodes_;
  std::vector<Link> interconnects_;  ///< indices into `nodes_`
};

}  // namespace p2g::graph
