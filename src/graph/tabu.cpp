#include "graph/tabu.h"

#include <limits>
#include <vector>

namespace p2g::graph {

namespace {

double objective(const FinalGraph& graph, const Partition& partition,
                 double imbalance_penalty) {
  return partition.cut_weight(graph) +
         imbalance_penalty * (partition.imbalance(graph) - 1.0) *
             partition.cut_weight(graph);
}

}  // namespace

Partition tabu_partition(const FinalGraph& graph, int parts,
                         const TabuOptions& options) {
  Partition current = greedy_partition(graph, parts);
  Partition best = current;
  const size_t n = graph.kernel_count();
  if (n == 0 || parts <= 1) return best;

  double best_score = objective(graph, best, options.imbalance_penalty);

  // tabu_until[kernel][part]: iteration until which moving `kernel` to
  // `part` is forbidden.
  std::vector<std::vector<int>> tabu_until(
      n, std::vector<int>(static_cast<size_t>(parts), -1));

  uint64_t rng = options.seed == 0 ? 1 : options.seed;
  auto next_random = [&rng] {
    rng ^= rng >> 12;
    rng ^= rng << 25;
    rng ^= rng >> 27;
    return rng * 0x2545F4914F6CDD1DULL;
  };

  for (int iteration = 0; iteration < options.iterations; ++iteration) {
    // Evaluate all single moves; pick the best non-tabu one (or a tabu
    // move that beats the global best — aspiration).
    double best_move_score = std::numeric_limits<double>::max();
    size_t move_kernel = n;
    int move_part = -1;

    for (size_t v = 0; v < n; ++v) {
      const int from = current.assignment[v];
      for (int p = 0; p < parts; ++p) {
        if (p == from) continue;
        current.assignment[v] = p;
        const double score =
            objective(graph, current, options.imbalance_penalty);
        current.assignment[v] = from;

        const bool tabu =
            tabu_until[v][static_cast<size_t>(p)] > iteration;
        const bool aspiration = score < best_score;
        if (tabu && !aspiration) continue;
        // Break score ties randomly to diversify.
        if (score < best_move_score ||
            (score == best_move_score && (next_random() & 1) != 0)) {
          best_move_score = score;
          move_kernel = v;
          move_part = p;
        }
      }
    }
    if (move_kernel == n) break;  // everything tabu, search exhausted

    const int from = current.assignment[move_kernel];
    current.assignment[move_kernel] = move_part;
    // Moving back is tabu for `tenure` iterations.
    tabu_until[move_kernel][static_cast<size_t>(from)] =
        iteration + options.tenure;

    if (best_move_score < best_score) {
      best_score = best_move_score;
      best = current;
    }
  }
  return best;
}

}  // namespace p2g::graph
