// Graph partitioning for the high-level scheduler (§IV, ref [17]).
//
// The HLS splits the weighted final dependency graph into components that
// can be distributed across execution nodes. We implement the classic
// combination: greedy region growth for an initial balanced partition,
// refined with Kernighan–Lin style boundary moves that reduce the weight
// of cut edges while respecting a balance constraint.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/static_graph.h"

namespace p2g::graph {

/// An assignment of every kernel to one of `parts` components.
struct Partition {
  int parts = 1;
  std::vector<int> assignment;  ///< kernel index -> part

  /// Total weight of edges whose endpoints live in different parts.
  double cut_weight(const FinalGraph& graph) const;

  /// Node weight of each part.
  std::vector<double> part_weights(const FinalGraph& graph) const;

  /// max(part weight) / ideal weight; 1.0 = perfectly balanced.
  double imbalance(const FinalGraph& graph) const;
};

/// Greedy growth: seeds each part with the heaviest unassigned kernel and
/// grows along the strongest edges until the part reaches its weight
/// budget.
Partition greedy_partition(const FinalGraph& graph, int parts);

/// Kernighan–Lin style refinement: repeatedly moves the boundary kernel
/// with the best cut-weight gain to a neighboring part, while keeping
/// imbalance under `max_imbalance`. Stops after `max_passes` passes with
/// no improvement.
void kl_refine(const FinalGraph& graph, Partition& partition,
               int max_passes = 8, double max_imbalance = 1.5);

/// The HLS default: greedy + KL.
Partition partition_graph(const FinalGraph& graph, int parts);

}  // namespace p2g::graph
