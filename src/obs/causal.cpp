#include "obs/causal.h"

#include <algorithm>
#include <cstdio>
#include <unordered_map>
#include <unordered_set>

namespace p2g::obs {

namespace {

/// Walk guard: a causal chain longer than this is a cycle artifact.
constexpr size_t kMaxChain = 4096;

Bucket bucket_of(SpanKind kind) {
  switch (kind) {
    case SpanKind::kWorker: return Bucket::kExec;
    case SpanKind::kAnalyzer: return Bucket::kQueue;
    case SpanKind::kWire: return Bucket::kWire;
    case SpanKind::kRemoteStore: return Bucket::kStore;
    case SpanKind::kRecovery: return Bucket::kRecovery;
    case SpanKind::kOther: return Bucket::kOther;
  }
  return Bucket::kOther;
}

std::string fmt_ms(int64_t ns) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.3f", static_cast<double>(ns) / 1e6);
  return buf;
}

/// Overlap of [lo, hi) with the recovery spans of `node`.
int64_t recovery_overlap(
    const std::vector<SpanRecord>& spans,
    const std::vector<size_t>& recovery_spans, const std::string& node,
    int64_t lo, int64_t hi) {
  int64_t overlap = 0;
  for (const size_t r : recovery_spans) {
    const SpanRecord& rec = spans[r];
    if (rec.node != node) continue;
    const int64_t begin = std::max(lo, rec.start_ns);
    const int64_t end = std::min(hi, rec.end_ns());
    if (end > begin) overlap += end - begin;
  }
  return overlap;
}

}  // namespace

const char* to_string(Bucket bucket) {
  switch (bucket) {
    case Bucket::kQueue: return "queue";
    case Bucket::kExec: return "exec";
    case Bucket::kWire: return "wire";
    case Bucket::kStore: return "store";
    case Bucket::kRecovery: return "recovery";
    case Bucket::kOther: return "other";
  }
  return "other";
}

CriticalPathReport analyze_critical_paths(
    const std::vector<SpanRecord>& spans) {
  CriticalPathReport report;

  // span id → index, recovery intervals, and per-frame terminal span (the
  // frame completes when its last span finishes).
  std::unordered_map<uint64_t, size_t> by_id;
  std::vector<size_t> recovery_spans;
  std::unordered_map<uint64_t, size_t> terminal;
  for (size_t i = 0; i < spans.size(); ++i) {
    const SpanRecord& span = spans[i];
    if (span.span_id != 0) by_id.emplace(span.span_id, i);
    if (span.kind == SpanKind::kRecovery) recovery_spans.push_back(i);
    if (span.trace_id == 0) continue;
    const auto [it, fresh] = terminal.emplace(span.trace_id, i);
    if (!fresh && span.end_ns() > spans[it->second].end_ns()) {
      it->second = i;
    }
  }

  Histogram bucket_hist[kBucketCount];
  Histogram total_hist;

  for (const auto& [trace_id, last] : terminal) {
    CriticalPath path;
    path.trace_id = trace_id;

    // Walk the parent chain from the terminal span to the root.
    std::unordered_set<uint64_t> visited;
    size_t at = last;
    while (path.chain.size() < kMaxChain) {
      path.chain.push_back(at);
      const SpanRecord& span = spans[at];
      if (span.parent_span == 0) break;
      if (!visited.insert(span.span_id).second) break;  // cycle guard
      const auto it = by_id.find(span.parent_span);
      if (it == by_id.end()) break;  // parent not captured (e.g. crashed)
      at = it->second;
    }
    std::reverse(path.chain.begin(), path.chain.end());

    const SpanRecord& root = spans[path.chain.front()];
    const SpanRecord& term = spans[path.chain.back()];
    path.root_name = root.name;
    path.terminal_name = term.name;
    path.root_age = root.age;
    path.total_ns = std::max<int64_t>(0, term.end_ns() - root.start_ns);

    // Attribute: span durations by kind, inter-span gaps by locality
    // (same node = queueing, cross node = wire), with gap time that
    // overlaps a recovery span on the child's node re-attributed to
    // recovery.
    for (size_t c = 0; c < path.chain.size(); ++c) {
      const SpanRecord& span = spans[path.chain[c]];
      path.bucket_ns[static_cast<size_t>(bucket_of(span.kind))] +=
          span.duration_ns;
      if (c == 0) continue;
      const SpanRecord& parent = spans[path.chain[c - 1]];
      const int64_t lo = parent.end_ns();
      const int64_t hi = span.start_ns;
      if (hi <= lo) continue;  // nested or back-to-back: no gap
      int64_t gap = hi - lo;
      const int64_t rec =
          recovery_overlap(spans, recovery_spans, span.node, lo, hi);
      path.bucket_ns[static_cast<size_t>(Bucket::kRecovery)] += rec;
      gap -= rec;
      const Bucket kind =
          span.node == parent.node ? Bucket::kQueue : Bucket::kWire;
      path.bucket_ns[static_cast<size_t>(kind)] += gap;
    }

    for (size_t b = 0; b < kBucketCount; ++b) {
      bucket_hist[b].record(path.bucket_ns[b]);
    }
    total_hist.record(path.total_ns);
    report.paths.push_back(std::move(path));
  }

  std::sort(report.paths.begin(), report.paths.end(),
            [](const CriticalPath& a, const CriticalPath& b) {
              if (a.total_ns != b.total_ns) return a.total_ns > b.total_ns;
              return a.trace_id < b.trace_id;  // deterministic order
            });

  report.bucket_latency.reserve(kBucketCount);
  for (size_t b = 0; b < kBucketCount; ++b) {
    HistogramSnapshot snap = bucket_hist[b].snapshot();
    snap.name =
        std::string("critpath_") + to_string(static_cast<Bucket>(b)) +
        "_ns";
    report.bucket_latency.push_back(std::move(snap));
  }
  report.total_latency = total_hist.snapshot();
  report.total_latency.name = "critpath_total_ns";
  return report;
}

std::string CriticalPathReport::to_string(
    const std::vector<SpanRecord>& spans, size_t top_k) const {
  std::string out;
  char buf[256];

  std::snprintf(buf, sizeof(buf), "critical paths: %zu frame(s)\n",
                paths.size());
  out += buf;
  if (paths.empty()) return out;

  out += "per-frame latency by bucket (ms):\n";
  std::snprintf(buf, sizeof(buf), "  %-10s %10s %10s %10s\n", "bucket",
                "p50", "p99", "max");
  out += buf;
  for (const HistogramSnapshot& h : bucket_latency) {
    // Strip the "critpath_" prefix and "_ns" suffix for display.
    std::string label = h.name;
    if (label.size() > 12) label = label.substr(9, label.size() - 12);
    std::snprintf(buf, sizeof(buf), "  %-10s %10.3f %10.3f %10.3f\n",
                  label.c_str(), h.percentile(50) / 1e6,
                  h.percentile(99) / 1e6,
                  static_cast<double>(h.max) / 1e6);
    out += buf;
  }
  std::snprintf(buf, sizeof(buf), "  %-10s %10.3f %10.3f %10.3f\n",
                "total", total_latency.percentile(50) / 1e6,
                total_latency.percentile(99) / 1e6,
                static_cast<double>(total_latency.max) / 1e6);
  out += buf;

  const size_t shown = std::min(top_k, paths.size());
  std::snprintf(buf, sizeof(buf), "top %zu critical path(s):\n", shown);
  out += buf;
  for (size_t p = 0; p < shown; ++p) {
    const CriticalPath& path = paths[p];
    std::snprintf(buf, sizeof(buf),
                  "#%zu frame 0x%llx age %lld: %s ms (%s -> %s)\n", p + 1,
                  static_cast<unsigned long long>(path.trace_id),
                  static_cast<long long>(path.root_age),
                  fmt_ms(path.total_ns).c_str(), path.root_name.c_str(),
                  path.terminal_name.c_str());
    out += buf;
    out += "   ";
    for (size_t b = 0; b < kBucketCount; ++b) {
      std::snprintf(buf, sizeof(buf), " %s=%s",
                    obs::to_string(static_cast<Bucket>(b)),
                    fmt_ms(path.bucket_ns[b]).c_str());
      out += buf;
    }
    out += "\n   chain:";
    for (const size_t index : path.chain) {
      const SpanRecord& span = spans[index];
      out += " ";
      out += span.name;
      if (!span.node.empty()) {
        out += "@";
        out += span.node;
      }
      if (index != path.chain.back()) out += " ->";
    }
    out += "\n";
  }
  return out;
}

}  // namespace p2g::obs
