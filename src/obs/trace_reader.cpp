#include "obs/trace_reader.h"

#include <cmath>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <set>
#include <sstream>

#include "common/error.h"

namespace p2g::obs {

namespace {

/// Finds `"key": ` in `line` and returns a pointer to the value text, or
/// nullptr. Matches the exact spacing this repo's writer emits.
const char* find_value(const std::string& line, const char* key) {
  std::string needle = "\"";
  needle += key;
  needle += "\": ";
  const size_t at = line.find(needle);
  if (at == std::string::npos) return nullptr;
  return line.c_str() + at + needle.size();
}

bool parse_number(const std::string& line, const char* key, double* out) {
  const char* v = find_value(line, key);
  if (v == nullptr) return false;
  char* end = nullptr;
  *out = std::strtod(v, &end);
  return end != v;
}

/// Parses a quoted string value with minimal unescaping (\" \\ — what
/// json_escape produces for the characters it escapes; other escapes are
/// kept verbatim, which is fine for diagnostics).
bool parse_string(const std::string& line, const char* key,
                  std::string* out) {
  const char* v = find_value(line, key);
  if (v == nullptr || *v != '"') return false;
  out->clear();
  for (const char* p = v + 1; *p != '\0'; ++p) {
    if (*p == '\\' && (p[1] == '"' || p[1] == '\\')) {
      out->push_back(p[1]);
      ++p;
    } else if (*p == '"') {
      return true;
    } else {
      out->push_back(*p);
    }
  }
  return false;  // unterminated
}

bool parse_hex_id(const std::string& line, const char* key, uint64_t* out) {
  std::string text;
  if (!parse_string(line, key, &text)) return false;
  *out = std::strtoull(text.c_str(), nullptr, 16);
  return true;
}

SpanKind kind_from(const std::string& name) {
  if (name == "worker") return SpanKind::kWorker;
  if (name == "analyzer") return SpanKind::kAnalyzer;
  if (name == "wire") return SpanKind::kWire;
  if (name == "remote_store") return SpanKind::kRemoteStore;
  if (name == "recovery") return SpanKind::kRecovery;
  return SpanKind::kOther;
}

int64_t us_to_ns(double us) { return std::llround(us * 1000.0); }

}  // namespace

size_t TraceDocument::cross_node_flows() const {
  std::map<uint64_t, std::set<int64_t>> start_pids;
  for (const auto& [pid, id] : flow_start_pids) start_pids[id].insert(pid);
  std::set<uint64_t> cross;
  for (const auto& [pid, id] : flow_finish_pids) {
    const auto it = start_pids.find(id);
    if (it == start_pids.end()) continue;
    for (const int64_t start_pid : it->second) {
      if (start_pid != pid) cross.insert(id);
    }
  }
  return cross.size();
}

TraceDocument read_trace_json(const std::string& text) {
  TraceDocument doc;
  std::istringstream in(text);
  std::string line;
  struct PendingSpan {
    SpanRecord span;
    int64_t pid;
  };
  std::vector<PendingSpan> pending;

  while (std::getline(in, line)) {
    const size_t open = line.find('{');
    if (open == std::string::npos) continue;  // [ and ] framing lines

    std::string ph;
    if (!parse_string(line, "ph", &ph)) {
      ++doc.malformed_lines;
      continue;
    }
    double pid_value = 0;
    parse_number(line, "pid", &pid_value);
    const int64_t pid = static_cast<int64_t>(pid_value);

    if (ph == "M") {
      std::string name;
      if (parse_string(line, "name", &name) && name == "process_name") {
        // The lane label is the *second* "name" on the line (inside args).
        const size_t args = line.find("\"args\"");
        if (args != std::string::npos) {
          const std::string tail = line.substr(args);
          std::string label;
          if (parse_string(tail, "name", &label)) {
            doc.process_names[pid] = label;
          }
        }
      }
      continue;
    }
    if (ph == "C") {
      ++doc.counter_events;
      continue;
    }
    if (ph == "s" || ph == "f") {
      uint64_t id = 0;
      if (!parse_hex_id(line, "id", &id)) {
        ++doc.malformed_lines;
        continue;
      }
      if (ph == "s") {
        ++doc.flow_starts;
        doc.flow_start_pids.emplace_back(pid, id);
      } else {
        ++doc.flow_finishes;
        doc.flow_finish_pids.emplace_back(pid, id);
      }
      continue;
    }
    if (ph != "X") continue;

    PendingSpan entry;
    SpanRecord& span = entry.span;
    entry.pid = pid;
    double ts = 0;
    double dur = 0;
    double tid = 0;
    double age = 0;
    if (!parse_string(line, "name", &span.name) ||
        !parse_number(line, "ts", &ts) ||
        !parse_number(line, "dur", &dur)) {
      ++doc.malformed_lines;
      continue;
    }
    parse_number(line, "tid", &tid);
    parse_number(line, "age", &age);
    span.thread_id = static_cast<int64_t>(tid);
    span.start_ns = us_to_ns(ts);
    span.duration_ns = us_to_ns(dur);
    span.age = static_cast<int64_t>(age);
    parse_hex_id(line, "trace", &span.trace_id);
    parse_hex_id(line, "span", &span.span_id);
    parse_hex_id(line, "parent", &span.parent_span);
    std::string kind;
    if (parse_string(line, "kind", &kind)) span.kind = kind_from(kind);
    std::string cat;
    if (parse_string(line, "cat", &cat) && cat == "p2g.flight") {
      ++doc.flight_spans;
    }
    pending.push_back(std::move(entry));
  }

  // Resolve node labels now that every metadata line has been seen.
  doc.spans.reserve(pending.size());
  for (PendingSpan& entry : pending) {
    const auto it = doc.process_names.find(entry.pid);
    entry.span.node = it != doc.process_names.end()
                          ? it->second
                          : "pid" + std::to_string(entry.pid);
    doc.spans.push_back(std::move(entry.span));
  }
  return doc;
}

TraceDocument read_trace_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in.good()) {
    throw_error(ErrorKind::kIo, "cannot read trace file '" + path + "'");
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return read_trace_json(buffer.str());
}

}  // namespace p2g::obs
