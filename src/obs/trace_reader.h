// Reader for the Chrome trace-event JSON written by TraceCollector and
// the distributed master's merged-trace stitcher (one event object per
// line, the format this repo emits — not a general-purpose JSON parser).
// Feeds the critical-path analyzer and the p2gtrace CLI.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "obs/causal.h"

namespace p2g::obs {

/// Parsed trace document.
struct TraceDocument {
  /// All ph:"X" spans (p2g and p2g.flight categories), node-qualified via
  /// the process_name metadata of their pid lane. Timestamps are relative
  /// to the document epoch, in nanoseconds.
  std::vector<SpanRecord> spans;
  /// pid → process label from ph:"M" process_name events.
  std::map<int64_t, std::string> process_names;
  size_t flow_starts = 0;    ///< ph:"s" endpoints
  size_t flow_finishes = 0;  ///< ph:"f" endpoints
  size_t counter_events = 0;
  size_t flight_spans = 0;   ///< spans from cat "p2g.flight"
  size_t malformed_lines = 0;

  /// Flow endpoints seen per (pid, flow id) direction — a cross-node flow
  /// is a flow id whose start and finish live on different pids.
  std::vector<std::pair<int64_t, uint64_t>> flow_start_pids;
  std::vector<std::pair<int64_t, uint64_t>> flow_finish_pids;

  /// Number of flow ids whose start and finish pids differ.
  size_t cross_node_flows() const;
};

/// Parses a trace document from its full JSON text.
TraceDocument read_trace_json(const std::string& text);

/// Reads and parses a trace file (throws kIo when unreadable).
TraceDocument read_trace_file(const std::string& path);

}  // namespace p2g::obs
