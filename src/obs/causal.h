// Critical-path analysis over the causal span DAG (ISSUE 6).
//
// The tracing layer (core/trace.h) records spans whose parent links follow
// the per-(field, age) dependency edges across threads and nodes:
// producer kernel span → wire-send span → remote-store apply span →
// consumer kernel span. Per frame (trace id) this module extracts the
// longest causal chain — the critical path: the chain ending at the
// frame's last-finishing span — and attributes its latency to buckets:
//
//   exec      time inside worker kernel spans
//   queue     same-node gap between a span and its causal child (analyzer
//             queueing + ready-queue wait)
//   wire      cross-node gap (serialize, chaos delay, retransmits) plus
//             time inside wire-send spans
//   store     time inside remote-store apply spans
//   recovery  the portion of any gap overlapping a recovery span on the
//             child's node (failure detection / reassignment stall)
//
// This layer sits *below* core in the library graph (p2g_core links
// p2g_obs), so it defines its own span model; the distributed master and
// the p2gtrace CLI convert collector spans / trace JSON into SpanRecords.
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "obs/metrics.h"

namespace p2g::obs {

/// Mirror of p2g::SpanKind (kept in sync by the converting layers).
enum class SpanKind : uint8_t {
  kWorker = 0,
  kAnalyzer = 1,
  kWire = 2,
  kRemoteStore = 3,
  kRecovery = 4,
  kOther = 5,
};

/// One span of the causal DAG, node-qualified.
struct SpanRecord {
  std::string name;
  std::string node;  ///< process lane ("" = single-node run)
  int64_t thread_id = 0;
  int64_t start_ns = 0;
  int64_t duration_ns = 0;
  int64_t age = 0;
  uint64_t trace_id = 0;     ///< frame; 0 = untraced (excluded from chains)
  uint64_t span_id = 0;
  uint64_t parent_span = 0;  ///< causal parent; 0 = root
  SpanKind kind = SpanKind::kWorker;

  int64_t end_ns() const { return start_ns + duration_ns; }
};

/// Latency buckets of a critical path.
enum class Bucket : uint8_t {
  kQueue = 0,
  kExec = 1,
  kWire = 2,
  kStore = 3,
  kRecovery = 4,
  kOther = 5,
};
inline constexpr size_t kBucketCount = 6;
const char* to_string(Bucket bucket);

/// The critical path of one frame.
struct CriticalPath {
  uint64_t trace_id = 0;
  std::string root_name;      ///< source span starting the frame
  std::string terminal_name;  ///< last-finishing span
  int64_t root_age = 0;
  int64_t total_ns = 0;  ///< root start → terminal end
  std::array<int64_t, kBucketCount> bucket_ns{};
  /// The chain, root first (indices into the analyzed span vector).
  std::vector<size_t> chain;
};

/// Per-frame critical paths plus cross-frame latency distributions.
struct CriticalPathReport {
  std::vector<CriticalPath> paths;  ///< sorted by total_ns, longest first
  /// Distribution of per-frame bucket latency across frames (p50/p99 via
  /// HistogramSnapshot::percentile). Named "critpath_<bucket>_ns".
  std::vector<HistogramSnapshot> bucket_latency;
  /// Distribution of per-frame end-to-end latency ("critpath_total_ns").
  HistogramSnapshot total_latency;

  bool empty() const { return paths.empty(); }

  /// Human-readable table: per-bucket p50/p99 plus the top-k paths with
  /// their bucket breakdown and chain (the p2gtrace CLI output).
  std::string to_string(const std::vector<SpanRecord>& spans,
                        size_t top_k = 10) const;
};

/// Computes per-frame critical paths over the span DAG. Spans with a zero
/// trace id participate only as recovery intervals (gap attribution);
/// parent links are followed through span ids, cycles and missing parents
/// terminate the walk.
CriticalPathReport analyze_critical_paths(
    const std::vector<SpanRecord>& spans);

}  // namespace p2g::obs
