// Low-frequency gauge sampler.
//
// A dedicated thread polls registered sources (queue depths, memory
// footprints, utilization ratios) on a fixed cadence and accumulates one
// TimeSeries per source. The runtime converts the series into Perfetto
// counter tracks (ph:"C" in the Chrome trace JSON) and embeds them in the
// MetricsSnapshot, turning point counters into the queue/utilization
// curves of the paper's Fig. 10 evaluation.
#pragma once

#include <chrono>
#include <condition_variable>
#include <functional>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "obs/metrics.h"

namespace p2g::obs {

class Sampler {
 public:
  explicit Sampler(std::chrono::milliseconds period);
  ~Sampler();

  Sampler(const Sampler&) = delete;
  Sampler& operator=(const Sampler&) = delete;

  /// Registers a source. Must be called before start(); `sample` is
  /// invoked from the sampler thread only.
  void add_source(std::string name, std::function<int64_t()> sample);

  void start();

  /// Takes a final sample, stops and joins the thread. Idempotent.
  void stop();

  /// The collected series (valid after stop(); moves them out).
  std::vector<TimeSeries> take_series();

 private:
  struct Source {
    std::function<int64_t()> sample;
    TimeSeries series;
  };

  void loop();
  void sample_once();

  std::chrono::milliseconds period_;
  std::vector<Source> sources_;
  std::thread thread_;
  std::mutex mutex_;
  std::condition_variable cv_;
  bool stopping_ = false;
  bool started_ = false;
};

}  // namespace p2g::obs
