// Runtime telemetry: a registry of named counters, gauges and log-bucketed
// latency histograms.
//
// This is the quantitative half of the paper's "instrumentation feeds the
// high-level scheduler" loop (§IV): the runtime records dispatch/kernel
// latency distributions and data-plane state (queue depths, memory
// footprint), a sampler turns gauges into time series, and the dist layer
// ships whole snapshots to the master for cross-node aggregation.
//
// Hot-path recording is contention-free: every metric shards its state
// across cache-line-aligned atomic cells and a recording thread always
// touches the same shard (thread-local index), so workers never bounce a
// cache line between cores. Reads (snapshots) sum over shards.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace p2g::obs {

/// Shards per metric. Power of two; threads map onto shards round-robin.
inline constexpr size_t kShards = 16;

/// Stable per-thread shard index in [0, kShards).
size_t shard_index();

/// Enables telemetry on a run (RunOptions::metrics).
struct MetricsOptions {
  bool enabled = false;
  /// Gauge-sampling cadence of the low-frequency sampler thread.
  int sample_period_ms = 5;
};

/// Monotonic counter (events, bytes, nanoseconds of busy time, ...).
class Counter {
 public:
  void add(int64_t n = 1) {
    shards_[shard_index()].v.fetch_add(n, std::memory_order_relaxed);
  }
  int64_t value() const;

 private:
  struct alignas(64) Cell {
    std::atomic<int64_t> v{0};
  };
  std::array<Cell, kShards> shards_;
};

/// Last-written value (queue depth, bytes resident, ...). Gauges are
/// usually read by the sampler thread, not set on the hot path, so a
/// single atomic suffices.
class Gauge {
 public:
  void set(int64_t v) { v_.store(v, std::memory_order_relaxed); }
  void add(int64_t n) { v_.fetch_add(n, std::memory_order_relaxed); }
  int64_t value() const { return v_.load(std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> v_{0};
};

/// Snapshot of one histogram: power-of-two buckets plus count/sum/min/max.
struct HistogramSnapshot {
  std::string name;
  int64_t count = 0;
  int64_t sum = 0;
  int64_t min = 0;  ///< 0 when empty
  int64_t max = 0;
  /// buckets[b] counts values in [bucket_lower(b), bucket_upper(b)).
  std::vector<int64_t> buckets;

  double mean() const;
  /// Linear interpolation inside the hit bucket, clamped to [min, max];
  /// `p` in [0, 100]. 0 when empty.
  double percentile(double p) const;
  /// Bucket-wise sum; min/max/count/sum combine (cross-shard and
  /// cross-node reduction).
  void merge(const HistogramSnapshot& other);
};

/// Log-bucketed histogram: bucket 0 holds values < 1 (incl. negatives),
/// bucket b >= 1 holds [2^(b-1), 2^b). 64 buckets cover the full int64
/// range, so nanosecond latencies from 1ns to centuries all land.
class Histogram {
 public:
  static constexpr size_t kBuckets = 64;

  void record(int64_t value);

  static size_t bucket_index(int64_t value);
  static int64_t bucket_lower(size_t bucket);
  static int64_t bucket_upper(size_t bucket);

  HistogramSnapshot snapshot() const;  ///< name left empty

 private:
  struct alignas(64) Shard {
    std::array<std::atomic<int64_t>, kBuckets> buckets{};
    std::atomic<int64_t> count{0};
    std::atomic<int64_t> sum{0};
    std::atomic<int64_t> min{INT64_MAX};
    std::atomic<int64_t> max{INT64_MIN};
  };
  std::array<Shard, kShards> shards_;
};

struct CounterValue {
  std::string name;
  int64_t value = 0;
};

struct TimeSeriesSample {
  int64_t t_ns = 0;  ///< monotonic (common/clock.h epoch)
  int64_t value = 0;
};

/// One sampled gauge over time (produced by obs::Sampler).
struct TimeSeries {
  std::string name;
  std::vector<TimeSeriesSample> samples;
};

/// A full point-in-time copy of a registry. Value type: serializable
/// (dist/message), mergeable (master aggregation), exportable.
struct MetricsSnapshot {
  std::vector<CounterValue> counters;
  std::vector<CounterValue> gauges;
  std::vector<HistogramSnapshot> histograms;
  std::vector<TimeSeries> series;

  bool empty() const {
    return counters.empty() && gauges.empty() && histograms.empty() &&
           series.empty();
  }

  const CounterValue* find_counter(std::string_view name) const;
  const CounterValue* find_gauge(std::string_view name) const;
  const HistogramSnapshot* find_histogram(std::string_view name) const;
  const TimeSeries* find_series(std::string_view name) const;

  /// Cross-node reduction: counters and gauges sum by name, histograms
  /// merge by name, unmatched entries are appended. Time series are
  /// node-local and stay untouched (inspect per-node snapshots for them).
  void merge(const MetricsSnapshot& other);

  /// Prometheus text exposition format (counters, gauges, histograms with
  /// cumulative `le` buckets). Metric names get a "p2g_" prefix and
  /// invalid characters are folded to '_'.
  std::string to_prometheus() const;

  /// JSON object with "counters"/"gauges"/"histograms" (incl. p50/p90/p99)
  /// and "series" members.
  std::string to_json() const;
};

/// Named-metric registry. Lookup is mutex-guarded and returns stable
/// references — resolve metrics once at setup and use the references on
/// the hot path.
class MetricsRegistry {
 public:
  Counter& counter(std::string_view name);
  Gauge& gauge(std::string_view name);
  Histogram& histogram(std::string_view name);

  /// Attaches a sampler-produced time series to snapshots.
  void add_series(TimeSeries series);

  MetricsSnapshot snapshot() const;
  std::string to_prometheus() const { return snapshot().to_prometheus(); }
  std::string to_json() const { return snapshot().to_json(); }

 private:
  mutable std::mutex mutex_;
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>, std::less<>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>, std::less<>> histograms_;
  std::vector<TimeSeries> series_;
};

}  // namespace p2g::obs
