#include "obs/sampler.h"

#include "common/clock.h"

namespace p2g::obs {

Sampler::Sampler(std::chrono::milliseconds period) : period_(period) {
  if (period_.count() < 1) period_ = std::chrono::milliseconds(1);
}

Sampler::~Sampler() { stop(); }

void Sampler::add_source(std::string name, std::function<int64_t()> sample) {
  Source source;
  source.sample = std::move(sample);
  source.series.name = std::move(name);
  sources_.push_back(std::move(source));
}

void Sampler::start() {
  if (started_ || sources_.empty()) return;
  started_ = true;
  thread_ = std::thread([this] { loop(); });
}

void Sampler::stop() {
  {
    std::scoped_lock lock(mutex_);
    stopping_ = true;
  }
  cv_.notify_all();
  if (thread_.joinable()) thread_.join();
}

std::vector<TimeSeries> Sampler::take_series() {
  std::vector<TimeSeries> out;
  out.reserve(sources_.size());
  for (Source& source : sources_) {
    out.push_back(std::move(source.series));
  }
  sources_.clear();
  return out;
}

void Sampler::sample_once() {
  const int64_t t = now_ns();
  for (Source& source : sources_) {
    source.series.samples.push_back(TimeSeriesSample{t, source.sample()});
  }
}

void Sampler::loop() {
  std::unique_lock lock(mutex_);
  while (!stopping_) {
    lock.unlock();
    sample_once();
    lock.lock();
    cv_.wait_for(lock, period_, [&] { return stopping_; });
  }
  lock.unlock();
  sample_once();  // closing sample so short runs still get two points
}

}  // namespace p2g::obs
