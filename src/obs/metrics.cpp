#include "obs/metrics.h"

#include <algorithm>
#include <bit>
#include <cmath>
#include <limits>
#include <sstream>

#include "common/string_util.h"

namespace p2g::obs {

size_t shard_index() {
  static std::atomic<size_t> next{0};
  thread_local const size_t index =
      next.fetch_add(1, std::memory_order_relaxed) % kShards;
  return index;
}

int64_t Counter::value() const {
  int64_t total = 0;
  for (const Cell& cell : shards_) {
    total += cell.v.load(std::memory_order_relaxed);
  }
  return total;
}

// ---------------------------------------------------------------- Histogram

size_t Histogram::bucket_index(int64_t value) {
  if (value < 1) return 0;
  const size_t width =
      static_cast<size_t>(std::bit_width(static_cast<uint64_t>(value)));
  return std::min(width, kBuckets - 1);
}

int64_t Histogram::bucket_lower(size_t bucket) {
  if (bucket == 0) return 0;
  return int64_t{1} << (bucket - 1);
}

int64_t Histogram::bucket_upper(size_t bucket) {
  if (bucket >= 63) return std::numeric_limits<int64_t>::max();
  return int64_t{1} << bucket;
}

void Histogram::record(int64_t value) {
  Shard& shard = shards_[shard_index()];
  shard.buckets[bucket_index(value)].fetch_add(1, std::memory_order_relaxed);
  shard.count.fetch_add(1, std::memory_order_relaxed);
  shard.sum.fetch_add(value, std::memory_order_relaxed);
  int64_t seen = shard.min.load(std::memory_order_relaxed);
  while (value < seen &&
         !shard.min.compare_exchange_weak(seen, value,
                                          std::memory_order_relaxed)) {
  }
  seen = shard.max.load(std::memory_order_relaxed);
  while (value > seen &&
         !shard.max.compare_exchange_weak(seen, value,
                                          std::memory_order_relaxed)) {
  }
}

HistogramSnapshot Histogram::snapshot() const {
  HistogramSnapshot out;
  out.buckets.assign(kBuckets, 0);
  int64_t min = std::numeric_limits<int64_t>::max();
  int64_t max = std::numeric_limits<int64_t>::min();
  for (const Shard& shard : shards_) {
    for (size_t b = 0; b < kBuckets; ++b) {
      out.buckets[b] += shard.buckets[b].load(std::memory_order_relaxed);
    }
    out.count += shard.count.load(std::memory_order_relaxed);
    out.sum += shard.sum.load(std::memory_order_relaxed);
    min = std::min(min, shard.min.load(std::memory_order_relaxed));
    max = std::max(max, shard.max.load(std::memory_order_relaxed));
  }
  out.min = out.count > 0 ? min : 0;
  out.max = out.count > 0 ? max : 0;
  return out;
}

double HistogramSnapshot::mean() const {
  return count > 0 ? static_cast<double>(sum) / static_cast<double>(count)
                   : 0.0;
}

double HistogramSnapshot::percentile(double p) const {
  if (count <= 0 || buckets.empty()) return 0.0;
  p = std::clamp(p, 0.0, 100.0);
  const double target = p / 100.0 * static_cast<double>(count);
  int64_t cumulative = 0;
  for (size_t b = 0; b < buckets.size(); ++b) {
    if (buckets[b] == 0) continue;
    const int64_t next = cumulative + buckets[b];
    if (static_cast<double>(next) >= target) {
      const double fraction =
          (target - static_cast<double>(cumulative)) /
          static_cast<double>(buckets[b]);
      const double lower =
          static_cast<double>(Histogram::bucket_lower(b));
      const double upper =
          static_cast<double>(Histogram::bucket_upper(b));
      const double value = lower + fraction * (upper - lower);
      return std::clamp(value, static_cast<double>(min),
                        static_cast<double>(max));
    }
    cumulative = next;
  }
  return static_cast<double>(max);
}

void HistogramSnapshot::merge(const HistogramSnapshot& other) {
  if (other.count == 0) return;
  if (buckets.size() < other.buckets.size()) {
    buckets.resize(other.buckets.size(), 0);
  }
  for (size_t b = 0; b < other.buckets.size(); ++b) {
    buckets[b] += other.buckets[b];
  }
  min = count > 0 ? std::min(min, other.min) : other.min;
  max = count > 0 ? std::max(max, other.max) : other.max;
  count += other.count;
  sum += other.sum;
}

// ----------------------------------------------------------- MetricsSnapshot

namespace {

const CounterValue* find_value(const std::vector<CounterValue>& values,
                               std::string_view name) {
  for (const CounterValue& v : values) {
    if (v.name == name) return &v;
  }
  return nullptr;
}

void merge_values(std::vector<CounterValue>& into,
                  const std::vector<CounterValue>& from) {
  for (const CounterValue& v : from) {
    bool found = false;
    for (CounterValue& mine : into) {
      if (mine.name == v.name) {
        mine.value += v.value;
        found = true;
        break;
      }
    }
    if (!found) into.push_back(v);
  }
}

/// Prometheus metric names: [a-zA-Z_:][a-zA-Z0-9_:]*.
std::string prom_name(std::string_view name) {
  std::string out = "p2g_";
  for (char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_' || c == ':';
    out.push_back(ok ? c : '_');
  }
  return out;
}

void json_series(std::ostringstream& os, const TimeSeries& ts) {
  os << "\"" << json_escape(ts.name) << "\": [";
  for (size_t i = 0; i < ts.samples.size(); ++i) {
    if (i > 0) os << ", ";
    os << "[" << ts.samples[i].t_ns << ", " << ts.samples[i].value << "]";
  }
  os << "]";
}

}  // namespace

const CounterValue* MetricsSnapshot::find_counter(
    std::string_view name) const {
  return find_value(counters, name);
}

const CounterValue* MetricsSnapshot::find_gauge(std::string_view name) const {
  return find_value(gauges, name);
}

const HistogramSnapshot* MetricsSnapshot::find_histogram(
    std::string_view name) const {
  for (const HistogramSnapshot& h : histograms) {
    if (h.name == name) return &h;
  }
  return nullptr;
}

const TimeSeries* MetricsSnapshot::find_series(std::string_view name) const {
  for (const TimeSeries& ts : series) {
    if (ts.name == name) return &ts;
  }
  return nullptr;
}

void MetricsSnapshot::merge(const MetricsSnapshot& other) {
  merge_values(counters, other.counters);
  merge_values(gauges, other.gauges);
  for (const HistogramSnapshot& h : other.histograms) {
    bool found = false;
    for (HistogramSnapshot& mine : histograms) {
      if (mine.name == h.name) {
        mine.merge(h);
        found = true;
        break;
      }
    }
    if (!found) histograms.push_back(h);
  }
}

std::string MetricsSnapshot::to_prometheus() const {
  std::ostringstream os;
  for (const CounterValue& c : counters) {
    const std::string name = prom_name(c.name);
    os << "# TYPE " << name << " counter\n"
       << name << " " << c.value << "\n";
  }
  for (const CounterValue& g : gauges) {
    const std::string name = prom_name(g.name);
    os << "# TYPE " << name << " gauge\n"
       << name << " " << g.value << "\n";
  }
  for (const HistogramSnapshot& h : histograms) {
    const std::string name = prom_name(h.name);
    os << "# TYPE " << name << " histogram\n";
    int64_t cumulative = 0;
    for (size_t b = 0; b < h.buckets.size(); ++b) {
      if (h.buckets[b] == 0) continue;
      cumulative += h.buckets[b];
      os << name << "_bucket{le=\"" << Histogram::bucket_upper(b) << "\"} "
         << cumulative << "\n";
    }
    os << name << "_bucket{le=\"+Inf\"} " << h.count << "\n"
       << name << "_sum " << h.sum << "\n"
       << name << "_count " << h.count << "\n";
  }
  return os.str();
}

std::string MetricsSnapshot::to_json() const {
  std::ostringstream os;
  os << "{\n  \"counters\": {";
  for (size_t i = 0; i < counters.size(); ++i) {
    if (i > 0) os << ", ";
    os << "\"" << json_escape(counters[i].name)
       << "\": " << counters[i].value;
  }
  os << "},\n  \"gauges\": {";
  for (size_t i = 0; i < gauges.size(); ++i) {
    if (i > 0) os << ", ";
    os << "\"" << json_escape(gauges[i].name) << "\": " << gauges[i].value;
  }
  os << "},\n  \"histograms\": {";
  for (size_t i = 0; i < histograms.size(); ++i) {
    const HistogramSnapshot& h = histograms[i];
    if (i > 0) os << ",";
    os << "\n    \"" << json_escape(h.name) << "\": {\"count\": " << h.count
       << ", \"sum\": " << h.sum << ", \"min\": " << h.min
       << ", \"max\": " << h.max << ", \"mean\": " << h.mean()
       << ", \"p50\": " << h.percentile(50) << ", \"p90\": "
       << h.percentile(90) << ", \"p99\": " << h.percentile(99) << "}";
  }
  os << "\n  },\n  \"series\": {";
  for (size_t i = 0; i < series.size(); ++i) {
    if (i > 0) os << ",";
    os << "\n    ";
    json_series(os, series[i]);
  }
  os << "\n  }\n}\n";
  return os.str();
}

// ----------------------------------------------------------- MetricsRegistry

Counter& MetricsRegistry::counter(std::string_view name) {
  std::scoped_lock lock(mutex_);
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    it = counters_.emplace(std::string(name), std::make_unique<Counter>())
             .first;
  }
  return *it->second;
}

Gauge& MetricsRegistry::gauge(std::string_view name) {
  std::scoped_lock lock(mutex_);
  auto it = gauges_.find(name);
  if (it == gauges_.end()) {
    it = gauges_.emplace(std::string(name), std::make_unique<Gauge>()).first;
  }
  return *it->second;
}

Histogram& MetricsRegistry::histogram(std::string_view name) {
  std::scoped_lock lock(mutex_);
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    it = histograms_.emplace(std::string(name), std::make_unique<Histogram>())
             .first;
  }
  return *it->second;
}

void MetricsRegistry::add_series(TimeSeries series) {
  std::scoped_lock lock(mutex_);
  series_.push_back(std::move(series));
}

MetricsSnapshot MetricsRegistry::snapshot() const {
  std::scoped_lock lock(mutex_);
  MetricsSnapshot out;
  out.counters.reserve(counters_.size());
  for (const auto& [name, counter] : counters_) {
    out.counters.push_back(CounterValue{name, counter->value()});
  }
  out.gauges.reserve(gauges_.size());
  for (const auto& [name, gauge] : gauges_) {
    out.gauges.push_back(CounterValue{name, gauge->value()});
  }
  out.histograms.reserve(histograms_.size());
  for (const auto& [name, histogram] : histograms_) {
    HistogramSnapshot snap = histogram->snapshot();
    snap.name = name;
    out.histograms.push_back(std::move(snap));
  }
  out.series = series_;
  return out;
}

}  // namespace p2g::obs
