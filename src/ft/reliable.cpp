#include "ft/reliable.h"

#include <algorithm>

#include "common/clock.h"
#include "dist/message.h"

namespace p2g::ft {

ReliableChannel::ReliableChannel(net::Transport& bus, std::string self,
                                 Options options)
    : bus_(bus),
      self_(std::move(self)),
      options_(options),
      span_salt_(mix(0x72657472616E7331ULL, hash_str(self_))),
      jitter_(mix(options.seed, hash_str(self_))) {
  retransmitter_ =
      sync::Thread("retransmitter", [this] { retransmit_loop(); });
}

ReliableChannel::~ReliableChannel() { stop(); }

void ReliableChannel::stop() {
  {
    std::scoped_lock lock(mutex_);
    if (stop_) return;
    check::write(stop_, "ReliableChannel.stop");
    stop_ = true;
  }
  cv_.notify_all();
  if (retransmitter_.joinable()) retransmitter_.join();
}

dist::SendStatus ReliableChannel::send(const std::string& to,
                                       dist::MessageType inner_type,
                                       std::vector<uint8_t> inner_payload,
                                       const TraceContext& ctx) {
  dist::DataEnvelope env;
  env.trace_id = ctx.trace_id;
  env.parent_span = ctx.span_id;
  env.inner_type = inner_type;
  env.inner = std::move(inner_payload);

  Message msg;
  msg.type = dist::MessageType::kData;
  msg.from = self_;
  msg.attempt = 1;
  msg.trace = ctx;
  {
    std::scoped_lock lock(mutex_);
    PeerSend& peer = senders_[to];
    env.seq = peer.next_seq++;
    msg.seq = env.seq;
    msg.payload = env.encode();
    Pending p;
    p.msg = msg;
    p.rto_us = options_.rto_initial_us;
    p.deadline_ns = now_ns() + p.rto_us * 1000;
    p.ctx = ctx;
    peer.pending.emplace(env.seq, std::move(p));
    unacked_.fetch_add(1);
  }
  data_sent_.fetch_add(1);
  cv_.notify_one();  // retransmitter may need the earlier deadline

  const dist::SendStatus status = bus_.send(to, std::move(msg));
  if (status == dist::SendStatus::kDead ||
      status == dist::SendStatus::kClosed) {
    // Nothing will ever ack this; drop the pending state right away.
    std::scoped_lock lock(mutex_);
    auto it = senders_.find(to);
    if (it != senders_.end() && it->second.pending.erase(env.seq) > 0) {
      unacked_.fetch_sub(1);
    }
  }
  return status;
}

std::vector<Message> ReliableChannel::on_data(const Message& message) {
  const dist::DataEnvelope env = dist::DataEnvelope::decode(message.payload);
  std::vector<Message> out;
  std::scoped_lock lock(mutex_);
  PeerRecv& peer = receivers_[message.from];
  if (env.seq <= peer.delivered || peer.buffer.count(env.seq)) {
    duplicates_dropped_.fetch_add(1);
    return out;
  }
  Message inner;
  inner.type = env.inner_type;
  inner.from = message.from;
  inner.payload = env.inner;
  inner.trace = TraceContext{env.trace_id, env.parent_span};
  peer.buffer.emplace(env.seq, std::move(inner));
  // Drain the in-order prefix.
  auto it = peer.buffer.find(peer.delivered + 1);
  while (it != peer.buffer.end()) {
    out.push_back(std::move(it->second));
    peer.buffer.erase(it);
    ++peer.delivered;
    it = peer.buffer.find(peer.delivered + 1);
  }
  return out;
}

void ReliableChannel::ack(const std::string& peer) {
  uint64_t cumulative = 0;
  {
    std::scoped_lock lock(mutex_);
    cumulative = receivers_[peer].delivered;
  }
  send_ack(peer, cumulative);
}

void ReliableChannel::send_ack(const std::string& to, uint64_t cumulative) {
  dist::AckMsg ack;
  ack.cumulative = cumulative;
  Message msg;
  msg.type = dist::MessageType::kAck;
  msg.from = self_;
  msg.payload = ack.encode();
  acks_sent_.fetch_add(1);
  bus_.send(to, std::move(msg));  // best effort; lost acks retrigger data
}

void ReliableChannel::on_ack(const Message& message) {
  const dist::AckMsg ack = dist::AckMsg::decode(message.payload);
  acks_received_.fetch_add(1);
  std::scoped_lock lock(mutex_);
  const auto it = senders_.find(message.from);
  if (it == senders_.end()) return;
  auto& pending = it->second.pending;
  auto p = pending.begin();
  int64_t cleared = 0;
  while (p != pending.end() && p->first <= ack.cumulative) {
    p = pending.erase(p);
    ++cleared;
  }
  if (cleared > 0) unacked_.fetch_sub(cleared);
}

void ReliableChannel::abandon_peer(const std::string& peer) {
  std::scoped_lock lock(mutex_);
  const auto it = senders_.find(peer);
  if (it == senders_.end()) return;
  unacked_.fetch_sub(static_cast<int64_t>(it->second.pending.size()));
  it->second.pending.clear();
}

int64_t ReliableChannel::unacked() const { return unacked_.load(); }

ReliableChannel::Stats ReliableChannel::stats() const {
  Stats s;
  s.data_sent = data_sent_.load();
  s.retransmits = retransmits_.load();
  s.duplicates_dropped = duplicates_dropped_.load();
  s.acks_sent = acks_sent_.load();
  s.acks_received = acks_received_.load();
  return s;
}

void ReliableChannel::retransmit_loop() {
  std::unique_lock lock(mutex_);
  while (!stop_) {
    check::read(stop_, "ReliableChannel.stop");
    // Earliest pending deadline across all peers.
    int64_t next = -1;
    for (const auto& [peer, state] : senders_) {
      for (const auto& [seq, p] : state.pending) {
        if (next < 0 || p.deadline_ns < next) next = p.deadline_ns;
      }
    }
    if (next < 0) {
      cv_.wait(lock);
      continue;
    }
    cv_.wait_until(lock, TimePoint(std::chrono::duration_cast<
                             SteadyClock::duration>(
                             std::chrono::nanoseconds(next))));
    if (stop_) return;

    const int64_t now = now_ns();
    // Collect due retransmissions, then send outside the lock.
    struct Due {
      std::string peer;
      Message msg;
      TraceContext ctx;
    };
    std::vector<Due> due;
    std::vector<std::string> dead_peers;
    for (auto& [peer, state] : senders_) {
      for (auto& [seq, p] : state.pending) {
        if (p.deadline_ns > now) continue;
        p.msg.attempt += 1;
        // Exponential backoff with +-10% jitter: spreads retransmission
        // bursts of many links without losing seed reproducibility.
        p.rto_us = std::min<int64_t>(
            static_cast<int64_t>(static_cast<double>(p.rto_us) *
                                 options_.backoff),
            options_.rto_max_us);
        const double jitter = 0.9 + 0.2 * jitter_.uniform();
        p.deadline_ns =
            now + static_cast<int64_t>(static_cast<double>(p.rto_us) *
                                       1000.0 * jitter);
        due.push_back(Due{peer, p.msg, p.ctx});
      }
    }
    lock.unlock();
    for (Due& d : due) {
      retransmits_.fetch_add(1);
      const int64_t t0 = now_ns();
      const dist::SendStatus status = bus_.send(d.peer, std::move(d.msg));
      if (trace_ != nullptr && d.ctx.valid()) {
        // The retransmission as a child span of the original wire span:
        // the visible per-link cost of an unreliable wire (tid -3 lane).
        TraceCollector::Span span;
        span.name = "retransmit->" + d.peer;
        span.start_ns = t0;
        span.duration_ns = now_ns() - t0;
        span.thread_id = -3;
        span.age = 0;
        span.bodies = 1;
        span.kind = SpanKind::kWire;
        span.trace_id = d.ctx.trace_id;
        span.span_id = mix(span_salt_, span_seq_.fetch_add(
                                           1, std::memory_order_relaxed));
        if (span.span_id == 0) span.span_id = 1;
        span.parent_span = d.ctx.span_id;
        trace_->record(std::move(span));
      }
      if (status == dist::SendStatus::kDead ||
          status == dist::SendStatus::kClosed) {
        dead_peers.push_back(d.peer);
      }
    }
    for (const std::string& peer : dead_peers) abandon_peer(peer);
    lock.lock();
  }
}

}  // namespace p2g::ft
