// Master-side checkpoint retention.
//
// Nodes periodically ship complete (field, age) payloads of fields their
// kernels produce (RemoteStore encoding with whole = true). The master
// retains the latest snapshot per (field, age) and replays them to the
// survivors during failover — the fallback path for data whose producer
// *and* every forwarded copy died with the crashed node. Write-once makes
// a checkpoint restore trivially idempotent: fill-mode injection writes
// only cells the survivor is missing.
#pragma once

#include <cstdint>
#include <map>
#include <utility>

#include "dist/message.h"

namespace p2g::ft {

class CheckpointStore {
 public:
  /// Retains `snapshot` as the latest checkpoint of its (field, age).
  void put(dist::RemoteStore snapshot) {
    latest_[{snapshot.field, snapshot.age}] = std::move(snapshot);
  }

  int64_t size() const { return static_cast<int64_t>(latest_.size()); }

  const std::map<std::pair<int32_t, int64_t>, dist::RemoteStore>& all()
      const {
    return latest_;
  }

 private:
  std::map<std::pair<int32_t, int64_t>, dist::RemoteStore> latest_;
};

}  // namespace p2g::ft
