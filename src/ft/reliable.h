// ReliableChannel: at-least-once delivery over an unreliable Transport.
//
// Sender side: every data message gets a per-(self, peer) sequence number
// starting at 1 and is kept until a cumulative ack covers it; a retransmit
// thread re-sends overdue messages with exponential backoff and seeded
// jitter. Retransmissions carry attempt > 1, which exempts them from chaos
// (ChaosBus only faults first attempts), so a retransmitted message always
// reaches a live peer.
//
// Receiver side: per-peer cumulative delivery counter plus an out-of-order
// buffer. on_data() hands back the inner messages in sequence order exactly
// once; duplicates are counted and dropped, and every receipt answers with
// a cumulative ack. Combined with write-once idempotent stores above, this
// turns at-least-once transport into exactly-once application.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "check/sync.h"
#include "common/rng.h"
#include "core/trace.h"
#include "dist/bus.h"

namespace p2g::ft {

using Message = dist::Message;

class ReliableChannel {
 public:
  struct Options {
    int64_t rto_initial_us = 25'000;
    int64_t rto_max_us = 400'000;
    double backoff = 2.0;
    uint64_t seed = 1;  ///< retransmit jitter stream
  };

  struct Stats {
    int64_t data_sent = 0;
    int64_t retransmits = 0;
    int64_t duplicates_dropped = 0;
    int64_t acks_sent = 0;
    int64_t acks_received = 0;
  };

  // Overload instead of `Options options = {}`: GCC 12 rejects a nested
  // class's default member initializers in a default argument of the
  // enclosing class (PR c++/96645).
  ReliableChannel(net::Transport& bus, std::string self)
      : ReliableChannel(bus, std::move(self), Options{}) {}
  ReliableChannel(net::Transport& bus, std::string self,
                  Options options);
  ~ReliableChannel();

  ReliableChannel(const ReliableChannel&) = delete;
  ReliableChannel& operator=(const ReliableChannel&) = delete;

  /// Optional tracing: retransmissions of traced envelopes are recorded
  /// as child spans of the sending wire span (the visible cost of an
  /// unreliable link). The collector must outlive the channel.
  void set_trace(TraceCollector* trace) { trace_ = trace; }

  /// Wraps the payload in a DataEnvelope and sends it reliably to `to`.
  /// kDropped (chaos ate the first attempt) still counts as in flight —
  /// the retransmit thread will recover it. kDead/kClosed abandon it.
  /// `ctx` rides in the envelope header: `ctx.span_id` is the sending wire
  /// span, which becomes the causal parent on the receiving node.
  dist::SendStatus send(const std::string& to,
                        dist::MessageType inner_type,
                        std::vector<uint8_t> inner_payload,
                        const TraceContext& ctx = {});

  /// Feeds an incoming kData message. Returns the inner messages that are
  /// now deliverable in order (possibly none). Does NOT ack: the caller
  /// acks via ack() *after applying* the returned messages, so a peer's
  /// unacked count only reaches zero once the data has actually landed —
  /// the invariant the master's termination detection relies on.
  std::vector<Message> on_data(const Message& message);

  /// Sends the current cumulative ack for `peer`. Call after applying the
  /// messages returned by on_data (also on pure duplicates, so a peer
  /// whose earlier ack was lost stops retransmitting).
  void ack(const std::string& peer);

  /// Feeds an incoming kAck message.
  void on_ack(const Message& message);

  /// Drops all sender state toward a dead peer (stop retransmitting into
  /// the void). Receiver state is kept — late data may still drain.
  void abandon_peer(const std::string& peer);

  /// Stops the retransmit thread. Idempotent.
  void stop();

  /// Messages sent but not yet covered by an ack (termination detection).
  int64_t unacked() const;

  Stats stats() const;

 private:
  struct Pending {
    Message msg;          ///< ready to re-send (attempt is bumped first)
    int64_t deadline_ns = 0;
    int64_t rto_us = 0;
    TraceContext ctx;     ///< sending wire span (retransmit span parent)
  };
  struct PeerSend {
    uint64_t next_seq = 1;
    std::map<uint64_t, Pending> pending;  ///< by seq
  };
  struct PeerRecv {
    uint64_t delivered = 0;  ///< highest in-order seq applied
    std::map<uint64_t, Message> buffer;  ///< out-of-order inner messages
  };

  void retransmit_loop();
  void send_ack(const std::string& to, uint64_t cumulative);

  net::Transport& bus_;
  const std::string self_;
  const Options options_;
  TraceCollector* trace_ = nullptr;      ///< set_trace(); may stay null
  std::atomic<uint64_t> span_seq_{1};    ///< retransmit span ids
  const uint64_t span_salt_;

  mutable sync::Mutex mutex_{"ReliableChannel.mutex"};
  sync::CondVar cv_{"ReliableChannel.cv"};
  std::map<std::string, PeerSend> senders_;
  std::map<std::string, PeerRecv> receivers_;
  Rng jitter_;
  bool stop_ = false;

  std::atomic<int64_t> data_sent_{0};
  std::atomic<int64_t> retransmits_{0};
  std::atomic<int64_t> duplicates_dropped_{0};
  std::atomic<int64_t> acks_sent_{0};
  std::atomic<int64_t> acks_received_{0};
  std::atomic<int64_t> unacked_{0};

  /// sync::Thread, not std::thread: under a p2gcheck exploration session
  /// the retransmitter becomes a schedulable participant of the virtual
  /// schedule instead of free-running outside it.
  sync::Thread retransmitter_;
};

}  // namespace p2g::ft
