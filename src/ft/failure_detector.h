// Heartbeat-based failure detection (phi-accrual style).
//
// Each node beats periodically; the detector keeps a sliding window of
// inter-arrival times per node and suspects a node when its current
// silence exceeds `phi_threshold` times the observed mean interval (with
// an absolute floor, so startup jitter and coarse schedulers cannot
// produce instant false positives). This is the cheap cousin of the
// phi-accrual detector: instead of evaluating the CDF we compare against
// a multiple of the mean, which gives the same adaptive behavior for the
// simulated cluster's in-process heartbeats.
#pragma once

#include <cstddef>
#include <cstdint>
#include <deque>
#include <map>
#include <mutex>
#include <string>
#include <vector>

namespace p2g::ft {

class FailureDetector {
 public:
  struct Options {
    double phi_threshold = 6.0;      ///< silence multiple before suspicion
    int64_t min_silence_us = 250'000;  ///< absolute suspicion floor
    size_t window = 16;              ///< inter-arrival samples kept
  };

  // Two constructors instead of `Options options = {}`: GCC 12 rejects a
  // nested class's default member initializers in a default argument of
  // the enclosing class (PR c++/96645).
  FailureDetector() : FailureDetector(Options{}) {}
  explicit FailureDetector(Options options) : options_(options) {}

  /// Records a heartbeat from `node` observed at `now_ns`.
  void heartbeat(const std::string& node, int64_t now_ns);

  /// Nodes silent beyond the suspicion bound at `now_ns`. A node is only
  /// ever suspected after at least one heartbeat (registration happens via
  /// the first beat).
  std::vector<std::string> suspects(int64_t now_ns) const;

  /// Nanosecond timestamp of the last beat (0 = never beat).
  int64_t last_beat_ns(const std::string& node) const;

  /// Heartbeats observed in total (diagnostics).
  int64_t beats() const;

  /// Forget a node (it was declared dead; stop re-suspecting it).
  void remove(const std::string& node);

 private:
  struct NodeState {
    int64_t last_ns = 0;
    std::deque<int64_t> intervals_ns;
  };

  int64_t suspicion_bound_ns(const NodeState& state) const;

  const Options options_;
  mutable std::mutex mutex_;
  std::map<std::string, NodeState> nodes_;
  int64_t beats_ = 0;
};

}  // namespace p2g::ft
