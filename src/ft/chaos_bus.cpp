#include "ft/chaos_bus.h"

#include "common/clock.h"

namespace p2g::ft {

namespace {

/// Extra delay a reorder verdict adds: long enough for back-to-back
/// traffic on the link to overtake, short relative to retransmit timeouts
/// so reordering alone never triggers spurious retransmissions.
constexpr int64_t kReorderBumpUs = 3000;

}  // namespace

ChaosBus::ChaosBus(FaultPlan plan)
    : plan_(std::move(plan)),
      start_ns_(now_ns()),
      owned_(std::make_unique<dist::MessageBus>()),
      inner_(owned_.get()),
      crash_fired_(plan_.crashes.size(), false) {
  wire_ = std::thread([this] { wire_loop(); });
}

ChaosBus::ChaosBus(FaultPlan plan, net::Transport& inner)
    : plan_(std::move(plan)),
      start_ns_(now_ns()),
      inner_(&inner),
      crash_fired_(plan_.crashes.size(), false) {
  wire_ = std::thread([this] { wire_loop(); });
}

ChaosBus::~ChaosBus() { shutdown(); }

void ChaosBus::set_crash_handler(CrashHandler handler) {
  std::scoped_lock lock(mutex_);
  crash_handler_ = std::move(handler);
}

void ChaosBus::shutdown() {
  {
    std::scoped_lock lock(mutex_);
    if (stop_) return;
    stop_ = true;
  }
  cv_.notify_all();
  if (wire_.joinable()) wire_.join();
}

ChaosBus::ChaosStats ChaosBus::chaos_stats() const {
  std::scoped_lock lock(mutex_);
  return cstats_;
}

void ChaosBus::fire_crash(size_t trigger_index) {
  CrashHandler handler;
  std::string node;
  {
    std::scoped_lock lock(mutex_);
    if (crash_fired_[trigger_index]) return;
    crash_fired_[trigger_index] = true;
    ++cstats_.crashes_fired;
    handler = crash_handler_;
    node = plan_.crashes[trigger_index].node;
  }
  // Outside the lock: the handler fences the node on the bus and flags the
  // node object, either of which may re-enter bus methods.
  if (handler) handler(node);
}

void ChaosBus::fire_count_crashes(int64_t n) {
  for (size_t i = 0; i < plan_.crashes.size(); ++i) {
    const CrashTrigger& t = plan_.crashes[i];
    if (t.after_messages >= 0 && n >= t.after_messages) fire_crash(i);
  }
}

void ChaosBus::fire_time_crashes(int64_t now) {
  for (size_t i = 0; i < plan_.crashes.size(); ++i) {
    const CrashTrigger& t = plan_.crashes[i];
    if (t.after_wall_ms >= 0 &&
        now - start_ns_ >= t.after_wall_ms * 1'000'000) {
      fire_crash(i);
    }
  }
}

dist::SendStatus ChaosBus::send(const std::string& to, Message message) {
  fire_count_crashes(++total_messages_);

  // Fencing first: messages that could never be delivered reach no fault
  // verdict, so crash timing does not perturb the verdict stream (and
  // hence the counters) of the surviving links.
  if (unreachable(to)) return inner_->send(to, std::move(message));

  const bool eligible =
      message.type == dist::MessageType::kData && message.attempt == 1;
  if (!eligible) return inner_->send(to, std::move(message));

  const FaultVerdict v = plan_.verdict(message.from, to, message.seq);
  {
    std::scoped_lock lock(mutex_);
    ++cstats_.data_messages;
    if (v.drop) {
      ++cstats_.dropped;
      return dist::SendStatus::kDropped;
    }
    if (v.duplicate) ++cstats_.duplicated;
    if (v.delay_us > 0) ++cstats_.delayed;
    if (v.reorder) ++cstats_.reordered;
  }

  if (v.duplicate) inner_->send(to, message);  // extra immediate copy

  const int64_t delay_us = v.delay_us + (v.reorder ? kReorderBumpUs : 0);
  if (delay_us > 0) {
    {
      std::scoped_lock lock(mutex_);
      if (!stop_) {
        in_flight_.fetch_add(1);
        heap_.push(Delayed{now_ns() + delay_us * 1000, order_++, to,
                           std::move(message)});
        cv_.notify_one();
        return dist::SendStatus::kDelivered;  // optimistic: on the wire
      }
    }
    // Wire already shut down; deliver inline instead of losing the message.
    return inner_->send(to, std::move(message));
  }
  return inner_->send(to, std::move(message));
}

void ChaosBus::wire_loop() {
  std::unique_lock lock(mutex_);
  while (true) {
    // Next deadline: the earliest delayed message or pending wall crash.
    int64_t next = -1;
    if (!heap_.empty()) next = heap_.top().at_ns;
    for (size_t i = 0; i < plan_.crashes.size(); ++i) {
      const CrashTrigger& t = plan_.crashes[i];
      if (t.after_wall_ms < 0 || crash_fired_[i]) continue;
      const int64_t due = start_ns_ + t.after_wall_ms * 1'000'000;
      if (next < 0 || due < next) next = due;
    }

    if (stop_ && heap_.empty()) return;
    if (stop_) {
      // Drain what is due immediately and discard the rest: the run is
      // over, nobody is reading mailboxes anymore.
      while (!heap_.empty()) heap_.pop();
      in_flight_.store(0);
      return;
    }

    if (next < 0) {
      cv_.wait(lock);
    } else {
      cv_.wait_until(lock, TimePoint(std::chrono::duration_cast<
                               SteadyClock::duration>(
                               std::chrono::nanoseconds(next))));
    }

    const int64_t now = now_ns();
    while (!heap_.empty() && heap_.top().at_ns <= now) {
      Delayed d = heap_.top();
      heap_.pop();
      lock.unlock();
      inner_->send(d.to, std::move(d.msg));
      in_flight_.fetch_sub(1);
      lock.lock();
    }
    lock.unlock();
    fire_time_crashes(now);
    lock.lock();
  }
}

}  // namespace p2g::ft
