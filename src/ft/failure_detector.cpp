#include "ft/failure_detector.h"

#include <algorithm>

namespace p2g::ft {

void FailureDetector::heartbeat(const std::string& node, int64_t now_ns) {
  std::scoped_lock lock(mutex_);
  NodeState& state = nodes_[node];
  if (state.last_ns != 0) {
    state.intervals_ns.push_back(now_ns - state.last_ns);
    while (state.intervals_ns.size() > options_.window) {
      state.intervals_ns.pop_front();
    }
  }
  state.last_ns = now_ns;
  ++beats_;
}

int64_t FailureDetector::suspicion_bound_ns(const NodeState& state) const {
  int64_t mean_ns = 0;
  if (!state.intervals_ns.empty()) {
    int64_t sum = 0;
    for (const int64_t iv : state.intervals_ns) sum += iv;
    mean_ns = sum / static_cast<int64_t>(state.intervals_ns.size());
  }
  const auto adaptive = static_cast<int64_t>(
      options_.phi_threshold * static_cast<double>(mean_ns));
  return std::max(adaptive, options_.min_silence_us * 1000);
}

std::vector<std::string> FailureDetector::suspects(int64_t now_ns) const {
  std::scoped_lock lock(mutex_);
  std::vector<std::string> out;
  for (const auto& [node, state] : nodes_) {
    if (now_ns - state.last_ns > suspicion_bound_ns(state)) {
      out.push_back(node);
    }
  }
  return out;
}

int64_t FailureDetector::last_beat_ns(const std::string& node) const {
  std::scoped_lock lock(mutex_);
  const auto it = nodes_.find(node);
  return it == nodes_.end() ? 0 : it->second.last_ns;
}

int64_t FailureDetector::beats() const {
  std::scoped_lock lock(mutex_);
  return beats_;
}

void FailureDetector::remove(const std::string& node) {
  std::scoped_lock lock(mutex_);
  nodes_.erase(node);
}

}  // namespace p2g::ft
