// ChaosBus: a Transport decorator that injects faults per a FaultPlan.
//
// Since ISSUE 10 the chaos layer decorates *any* net::Transport — the
// in-process MessageBus or a real socket backend — instead of inheriting
// from the bus. The single-argument constructor keeps the historic "chaos
// bus that owns its own in-process bus" shape for existing tests; the
// two-argument form wraps an externally owned transport.
//
// Only first-attempt data-plane messages (kData with attempt == 1) are
// subject to faults: retransmissions and the control plane (acks,
// heartbeats, reassignment, shutdown) pass through untouched. This keeps
// the fault model honest — the reliable channel must recover from losing
// original transmissions — while making the verdict stream, and hence the
// chaos counters, a deterministic function of the seed.
//
// Delay and reorder verdicts route messages through a wire thread holding
// a deadline-ordered heap; reordering is modeled as an extra delay bump
// that lets later traffic on the link overtake. Scripted crashes fire a
// handler installed by the master (message-count triggers from the sending
// thread, wall-time triggers from the wire thread).
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <queue>
#include <string>
#include <thread>
#include <vector>

#include "dist/bus.h"
#include "ft/fault_plan.h"
#include "net/transport.h"

namespace p2g::ft {

using Message = dist::Message;

class ChaosBus : public net::Transport {
 public:
  /// Invoked (at most once per trigger) when a scripted crash fires; runs
  /// on whatever thread hit the trigger, so it must not join threads.
  using CrashHandler = std::function<void(const std::string& node)>;

  /// Injected-fault counters. All except `crashes_fired` are deterministic
  /// given the seed and per-link traffic (see file comment).
  struct ChaosStats {
    int64_t data_messages = 0;  ///< first-attempt kData sends seen
    int64_t dropped = 0;
    int64_t duplicated = 0;
    int64_t delayed = 0;
    int64_t reordered = 0;
    int64_t crashes_fired = 0;
  };

  /// Owns a fresh in-process MessageBus (the historic shape).
  explicit ChaosBus(FaultPlan plan);
  /// Decorates an externally owned transport; `inner` must outlive this.
  ChaosBus(FaultPlan plan, net::Transport& inner);
  ~ChaosBus() override;

  // --- Transport: chaos applies to send(); the rest forwards to inner. ---
  dist::SendStatus send(const std::string& to, Message message) override;
  std::shared_ptr<Mailbox> register_endpoint(const std::string& name) override {
    return inner_->register_endpoint(name);
  }
  int broadcast(Message message) override {
    return inner_->broadcast(std::move(message));
  }
  void close_all() override { inner_->close_all(); }
  void mark_dead(const std::string& name) override { inner_->mark_dead(name); }
  bool is_dead(const std::string& name) const override {
    return inner_->is_dead(name);
  }
  bool unreachable(const std::string& to) const override {
    return inner_->unreachable(to);
  }
  int64_t delivered() const override { return inner_->delivered(); }
  dist::BusStats stats() const override { return inner_->stats(); }

  void set_crash_handler(CrashHandler handler);

  /// Stops the wire thread; pending delayed messages are discarded. Call
  /// after close_all() — the master does this once the run is over.
  void shutdown();

  ChaosStats chaos_stats() const;

  /// Delayed messages still sitting on the wire (termination detection:
  /// quiescence requires an empty wire).
  int64_t in_flight() const { return in_flight_.load(); }

  /// The decorated transport (diagnostics / tests).
  net::Transport& inner() { return *inner_; }

 private:
  struct Delayed {
    int64_t at_ns = 0;
    uint64_t order = 0;  ///< FIFO tiebreak for equal deadlines
    std::string to;
    Message msg;
  };
  struct DelayedLater {
    bool operator()(const Delayed& a, const Delayed& b) const {
      return a.at_ns != b.at_ns ? a.at_ns > b.at_ns : a.order > b.order;
    }
  };

  void wire_loop();
  /// Fires message-count crash triggers crossed by total message `n`.
  void fire_count_crashes(int64_t n);
  /// Fires wall-time crash triggers due at `now` (wire thread).
  void fire_time_crashes(int64_t now);
  void fire_crash(size_t trigger_index);

  const FaultPlan plan_;
  const int64_t start_ns_;

  std::unique_ptr<net::Transport> owned_;  ///< set by the owning ctor only
  net::Transport* inner_;                  ///< never null

  mutable std::mutex mutex_;  ///< guards heap_, stats, crash bookkeeping
  std::condition_variable cv_;
  std::priority_queue<Delayed, std::vector<Delayed>, DelayedLater> heap_;
  ChaosStats cstats_;
  std::vector<bool> crash_fired_;
  CrashHandler crash_handler_;
  uint64_t order_ = 0;
  bool stop_ = false;

  std::atomic<int64_t> total_messages_{0};
  std::atomic<int64_t> in_flight_{0};
  std::thread wire_;
};

}  // namespace p2g::ft
