// FaultPlan: a seeded, fully reproducible description of injected faults.
//
// Every fault decision is a *pure function* of (seed, link, sequence
// number) via a stateless splitmix64 hash — independent of thread
// interleaving, wall-clock time, and the order in which links happen to
// send. Two runs with the same seed and the same per-link traffic reach
// identical drop/duplicate/delay verdicts, which is what makes chaos-test
// counters assertable and failing seeds replayable.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <utility>
#include <vector>

namespace p2g::ft {

/// Fault probabilities and delay distribution of one directed link.
struct LinkFaults {
  double drop_p = 0.0;     ///< first transmission silently discarded
  double dup_p = 0.0;      ///< delivered twice
  double reorder_p = 0.0;  ///< delayed past later traffic on the link
  int64_t delay_min_us = 0;
  int64_t delay_max_us = 0;  ///< 0 = no delay distribution
};

/// A scripted node crash: fires when the bus has carried `after_messages`
/// messages in total, or `after_wall_ms` after the bus started — whichever
/// trigger is set (message counts are the reproducible choice).
struct CrashTrigger {
  std::string node;
  int64_t after_messages = -1;
  int64_t after_wall_ms = -1;
};

/// The chaos outcome for one first-attempt data message.
struct FaultVerdict {
  bool drop = false;
  bool duplicate = false;
  bool reorder = false;
  int64_t delay_us = 0;
};

struct FaultPlan {
  uint64_t seed = 1;
  /// Applied to every link without an explicit override.
  LinkFaults default_link;
  /// Per-(from, to) overrides.
  std::map<std::pair<std::string, std::string>, LinkFaults> links;
  std::vector<CrashTrigger> crashes;

  const LinkFaults& faults(const std::string& from,
                           const std::string& to) const;

  /// Pure verdict for the `seq`-th data message on (from -> to).
  FaultVerdict verdict(const std::string& from, const std::string& to,
                       uint64_t seq) const;

  /// Convenience: uniform drop/dup/reorder probability `p` on every link,
  /// with delays in [0, delay_max_us].
  static FaultPlan uniform(uint64_t seed, double p,
                           int64_t delay_max_us = 0);
};

}  // namespace p2g::ft
