#include "ft/fault_plan.h"

#include "common/rng.h"

namespace p2g::ft {

namespace {

/// Uniform double in [0, 1) from one hash output.
double to_unit(uint64_t h) { return static_cast<double>(h >> 11) * 0x1.0p-53; }

/// Decision salts: each fault dimension draws from an independent stream.
enum : uint64_t { kDrop = 1, kDup = 2, kReorder = 3, kDelay = 4 };

uint64_t link_hash(const std::string& from, const std::string& to) {
  // Order-sensitive combination: (a -> b) and (b -> a) are distinct links.
  return mix(hash_str(from), hash_str(to));
}

}  // namespace

const LinkFaults& FaultPlan::faults(const std::string& from,
                                    const std::string& to) const {
  const auto it = links.find({from, to});
  return it != links.end() ? it->second : default_link;
}

FaultVerdict FaultPlan::verdict(const std::string& from,
                                const std::string& to, uint64_t seq) const {
  const LinkFaults& lf = faults(from, to);
  const uint64_t link = link_hash(from, to);
  FaultVerdict v;
  v.drop = to_unit(mix(seed, link, seq, kDrop)) < lf.drop_p;
  if (v.drop) return v;  // drop preempts everything else
  v.duplicate = to_unit(mix(seed, link, seq, kDup)) < lf.dup_p;
  v.reorder = to_unit(mix(seed, link, seq, kReorder)) < lf.reorder_p;
  if (lf.delay_max_us > lf.delay_min_us) {
    const auto span =
        static_cast<uint64_t>(lf.delay_max_us - lf.delay_min_us + 1);
    v.delay_us = lf.delay_min_us +
                 static_cast<int64_t>(mix(seed, link, seq, kDelay) % span);
  } else {
    v.delay_us = lf.delay_min_us;
  }
  return v;
}

FaultPlan FaultPlan::uniform(uint64_t seed, double p, int64_t delay_max_us) {
  FaultPlan plan;
  plan.seed = seed;
  plan.default_link.drop_p = p;
  plan.default_link.dup_p = p;
  plan.default_link.reorder_p = p;
  plan.default_link.delay_max_us = delay_max_us;
  return plan;
}

}  // namespace p2g::ft
