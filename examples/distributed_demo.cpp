// Distributed P2G on the simulated cluster (paper §IV, Fig. 1).
//
// The master derives the final implicit static dependency graph from the
// k-means workload, partitions it (greedy+KL or tabu search), places the
// partitions on the reported topology, runs the execution nodes with
// store forwarding over the message bus, and finally repartitions using
// the collected instrumentation weights.
//
// Usage: distributed_demo [nodes] [n] [k] [iterations]
#include <cstdio>
#include <cstdlib>

#include "dist/master.h"
#include "workloads/kmeans.h"

using namespace p2g;

int main(int argc, char** argv) {
  workloads::KmeansWorkload workload;
  dist::MasterOptions options;
  options.nodes = argc > 1 ? std::atoi(argv[1]) : 3;
  workload.config.n = argc > 2 ? std::atoi(argv[2]) : 600;
  workload.config.k = argc > 3 ? std::atoi(argv[3]) : 20;
  workload.config.iterations = argc > 4 ? std::atoi(argv[4]) : 5;
  options.workers_per_node = 1;
  workload.apply_schedule(options.base_options);
  options.program_factory = [&workload] { return workload.build(); };

  dist::Master master(options);

  std::printf("final static dependency graph:\n%s\n",
              master.final_graph().to_dot().c_str());

  const dist::DistributedRunReport report = master.run();
  std::printf("cluster of %d nodes finished in %.3f s%s\n", options.nodes,
              report.wall_s, report.timed_out ? " (TIMED OUT)" : "");
  std::printf("partition cut weight: %.1f, messages delivered: %lld\n\n",
              report.partition.cut_weight(master.final_graph()),
              static_cast<long long>(report.messages_delivered));

  for (const auto& [node, instr] : report.node_reports) {
    std::printf("--- %s ---\n%s\n", node.c_str(),
                instr.to_table().c_str());
  }

  // Verify against the sequential reference.
  if (!workload.snapshots->empty() &&
      workload.snapshots->back() ==
          workloads::kmeans_sequential(workload.config)) {
    std::printf("verified: distributed result identical to sequential "
                "k-means\n");
  } else {
    std::printf("ERROR: distributed result diverged!\n");
    return 1;
  }

  // HLS repartitioning from profiles (paper: the weighted final graph can
  // be repartitioned to improve throughput).
  graph::FinalGraph weighted = master.final_graph();
  weighted.apply_instrumentation(report.combined);
  const graph::Partition refined = master.repartition(report);
  std::printf("\nrepartition with profile weights: cut %.1f -> %.1f\n",
              report.partition.cut_weight(weighted),
              refined.cut_weight(weighted));
  return 0;
}
