// MJPEG encoding on the P2G runtime (the paper's headline workload).
//
// Usage:
//   mjpeg_encode [output.mjpeg] [frames] [workers] [input.yuv width height]
//
// Without an input file a deterministic synthetic CIF sequence stands in
// for the paper's Foreman clip. The program encodes through the P2G
// pipeline (read/splitYUV -> y/u/vDCT -> VLC/write), verifies the result
// against the single-threaded standalone encoder, and prints the
// per-kernel micro-benchmark table.
#include <cstdio>
#include <cstdlib>
#include <memory>

#include "core/runtime.h"
#include "media/avi.h"
#include "workloads/mjpeg_workload.h"
#include "workloads/standalone_mjpeg.h"

using namespace p2g;

int main(int argc, char** argv) {
  const char* output_path = argc > 1 ? argv[1] : "out.mjpeg";
  const int frames = argc > 2 ? std::atoi(argv[2]) : 25;
  const int workers = argc > 3 ? std::atoi(argv[3]) : 0;

  auto video = std::make_shared<media::YuvVideo>();
  if (argc > 6) {
    *video = media::read_yuv_file(argv[4], std::atoi(argv[5]),
                                  std::atoi(argv[6]));
    if (frames > 0 &&
        video->frames.size() > static_cast<size_t>(frames)) {
      video->frames.resize(static_cast<size_t>(frames));
    }
    std::printf("input: %s (%dx%d, %zu frames)\n", argv[4], video->width,
                video->height, video->frames.size());
  } else {
    *video = media::generate_synthetic_video(352, 288, frames);
    std::printf("input: synthetic CIF clip, %d frames\n", frames);
  }

  workloads::MjpegWorkload workload;
  workload.video = video;
  RunOptions options;
  options.workers = workers;
  Runtime runtime(workload.build(), options);
  const RunReport report = runtime.run();

  if (std::string(output_path).size() > 4 &&
      std::string(output_path).substr(std::string(output_path).size() - 4) ==
          ".avi") {
    media::write_avi_file(output_path,
                          media::split_mjpeg(workload.output->stream()),
                          media::AviInfo{video->width, video->height, 25});
  } else {
    workload.output->write_file(output_path);
  }
  std::printf("encoded %zu frames -> %s (%zu bytes) in %.3f s\n\n",
              workload.output->frame_count(), output_path,
              workload.output->byte_count(), report.wall_s);
  std::printf("%s\n", report.instrumentation.to_table().c_str());

  // Cross-check against the baseline encoder: must be bit-exact.
  const media::MjpegWriter reference =
      workloads::encode_mjpeg_standalone(*video);
  if (reference.stream() == workload.output->stream()) {
    std::printf("verified: bit-exact with the standalone single-threaded "
                "encoder\n");
  } else {
    std::printf("ERROR: output differs from the standalone encoder!\n");
    return 1;
  }
  return 0;
}
