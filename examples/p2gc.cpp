// p2gc — the P2G kernel-language compiler driver (paper §VI-A).
//
// Subcommands:
//   p2gc run   <file.p2g> [max_age] [workers]   interpret on the runtime
//              [--lint]  refuse to run a program with lint errors
//              [--checked]  record writer provenance (double-write errors
//                           name both offending kernel instances)
//   p2gc lint  <file.p2g> [--json]              static analysis only
//   p2gc dep   <file.p2g> [--json]              symbolic dependence &
//                                               footprint report
//                                               (accesses, edges,
//                                               certificates)
//   p2gc emit  <file.p2g> [out.cpp]             generate C++ (with main)
//   p2gc build <file.p2g> [binary]              generate + invoke g++,
//                                               producing a complete
//                                               binary linked against the
//                                               P2G libraries
//   p2gc graph <file.p2g>                       print the implicit static
//                                               dependency graphs as DOT
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>
#include <vector>

#include "analysis/lang_lint.h"
#include "core/runtime.h"
#include "graph/static_graph.h"
#include "lang/codegen.h"
#include "lang/driver.h"
#include "lang/parser.h"

using namespace p2g;

namespace {

int usage() {
  std::fprintf(stderr,
               "usage: p2gc run <file.p2g> [max_age] [workers] "
               "[--lint] [--checked] [--no-certs]\n"
               "       p2gc lint <file.p2g> [--json]\n"
               "       p2gc dep <file.p2g> [--json]\n"
               "       p2gc emit <file.p2g> [out.cpp]\n"
               "       p2gc build <file.p2g> [binary]\n"
               "       p2gc graph <file.p2g>\n");
  return 2;
}

int cmd_lint(const std::string& path, bool json) {
  const analysis::LintReport report = analysis::lint_file(path);
  if (json) {
    std::printf("%s\n", report.to_json().c_str());
  } else if (report.empty()) {
    std::printf("%s: clean\n", path.c_str());
  } else {
    std::printf("%s", report.to_text().c_str());
  }
  return report.has_errors() ? 1 : 0;
}

int cmd_dep(const std::string& path, bool json) {
  const analysis::DependenceReport report = analysis::dep_file(path);
  if (json) {
    std::printf("%s\n", report.to_json().c_str());
  } else {
    std::printf("%s", report.to_text().c_str());
  }
  return report.diagnostics.has_errors() ? 1 : 0;
}

int cmd_run(const std::string& path, int argc, char** argv) {
  bool lint = false;
  RunOptions options;
  std::vector<const char*> positional;
  for (int i = 0; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--lint") {
      lint = true;
    } else if (arg == "--checked") {
      options.checked = true;
    } else if (arg == "--no-certs") {
      options.use_certificates = false;
    } else {
      positional.push_back(argv[i]);
    }
  }
  if (lint) {
    const analysis::LintReport report = analysis::lint_file(path);
    if (report.has_errors()) {
      std::fprintf(stderr, "%s", report.to_text().c_str());
      std::fprintf(stderr, "p2gc: refusing to run %s\n", path.c_str());
      return 1;
    }
  }
  lang::CompiledModule compiled = lang::compile_file(path);
  if (positional.size() > 0) options.max_age = std::atoll(positional[0]);
  if (positional.size() > 1) options.workers = std::atoi(positional[1]);
  // Embed independence certificates: statically proven (field, fetch)
  // independence lets the analyzer skip fine-grained region checks.
  const size_t certificates = compiled.program.certify();
  Runtime runtime(std::move(compiled.program), options);
  const RunReport report = runtime.run();
  for (const std::string& line : compiled.printed->snapshot()) {
    std::printf("%s\n", line.c_str());
  }
  std::printf("\nwall time: %.3f s\n%s", report.wall_s,
              report.instrumentation.to_table().c_str());
  std::printf("certificates: %zu embedded, %lld region checks skipped\n",
              certificates,
              static_cast<long long>(runtime.certified_skips()));
  return report.timed_out ? 1 : 0;
}

std::string emit_cpp(const std::string& path) {
  lang::CodegenOptions options;
  options.with_main = true;
  options.source_name = path;
  return lang::generate_cpp_from_source(lang::read_file(path), options);
}

int cmd_emit(const std::string& path, const std::string& out) {
  std::ofstream(out) << emit_cpp(path);
  std::printf("wrote %s\n", out.c_str());
  return 0;
}

int cmd_build(const std::string& path, const std::string& binary) {
  const std::string cpp = binary + ".gen.cpp";
  std::ofstream(cpp) << emit_cpp(path);

#if defined(P2G_SOURCE_DIR) && defined(P2G_BINARY_DIR)
  const std::string src = P2G_SOURCE_DIR;
  const std::string bin = P2G_BINARY_DIR;
  // The paper: "The P2G compiler works also as a compiler driver for the
  // native compiler and produces complete binaries".
  const std::string command =
      "g++ -std=c++20 -O2 -I " + src + "/src " + cpp + " -o " + binary +
      " " + bin + "/src/lang/libp2g_lang.a " + bin +
      "/src/core/libp2g_core.a " + bin + "/src/nd/libp2g_nd.a " + bin +
      "/src/common/libp2g_common.a -lpthread";
  std::printf("%s\n", command.c_str());
  const int rc = std::system(command.c_str());
  if (rc != 0) {
    std::fprintf(stderr, "native compilation failed\n");
    return 1;
  }
  std::printf("built %s\n", binary.c_str());
  return 0;
#else
  std::fprintf(stderr, "p2gc was built without native-compiler paths; use "
                       "'emit' and compile manually\n");
  return 1;
#endif
}

int cmd_graph(const std::string& path) {
  lang::ModuleAst module = lang::parse_module(lang::read_file(path));
  lang::analyze(module);
  lang::CompiledModule compiled =
      lang::compile_source(lang::read_file(path));
  // Rebuild a Program only to derive the graphs.
  const auto intermediate =
      graph::IntermediateGraph::from_program(compiled.program);
  const auto final_graph =
      graph::FinalGraph::from_program(compiled.program);
  std::printf("// intermediate implicit static dependency graph (Fig. 2)\n");
  std::printf("%s\n", intermediate.to_dot().c_str());
  std::printf("// final implicit static dependency graph (Fig. 3)\n");
  std::printf("%s", final_graph.to_dot().c_str());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 3) return usage();
  const std::string command = argv[1];
  const std::string path = argv[2];
  try {
    if (command == "run") return cmd_run(path, argc - 3, argv + 3);
    if (command == "lint") {
      return cmd_lint(path,
                      argc > 3 && std::string(argv[3]) == "--json");
    }
    if (command == "dep") {
      return cmd_dep(path,
                     argc > 3 && std::string(argv[3]) == "--json");
    }
    if (command == "emit") {
      return cmd_emit(path, argc > 3 ? argv[3] : "out.cpp");
    }
    if (command == "build") {
      return cmd_build(path, argc > 3 ? argv[3] : "a.p2g.out");
    }
    if (command == "graph") return cmd_graph(path);
  } catch (const Error& e) {
    std::fprintf(stderr, "p2gc: %s\n", e.what());
    return 1;
  }
  return usage();
}
