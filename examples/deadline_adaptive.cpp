// Deadlines and alternate code paths (paper §V-B and §IX).
//
// A live encoder must keep up with the capture rate: "it does not make
// sense to encode a frame if the playback has moved past that point in
// the video-stream". This example exercises P2G's deadline machinery on a
// simulated live capture:
//
//   capture  (source, paced)   frame `a` becomes available at t0 + a*budget
//   decide   (serial)          polls the global timer: plenty of slack ->
//                              store to hq_frames(a); behind schedule ->
//                              store to fast_frames(a) (the *alternate
//                              code path*: a different field, so different
//                              downstream dependencies); past the deadline
//                              entirely -> store nothing (frame dropped,
//                              downstream never becomes runnable)
//   hq_encode / fast_encode    naive-DCT q=80 vs AAN-DCT q=30 encoders
//
// Under load (slow hq encoder + small budget) the decide kernel genuinely
// falls behind and the alternate/drop paths kick in.
//
// Usage: deadline_adaptive [frames] [frame_budget_ms] [workers]
#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <memory>
#include <mutex>
#include <thread>

#include "common/clock.h"

#include "core/context.h"
#include "core/runtime.h"
#include "media/jpeg.h"
#include "media/mjpeg.h"

using namespace p2g;

namespace {

/// Packs a planar frame into one [3][h][w] field (chroma planes padded).
nd::AnyBuffer pack_frame(const media::YuvFrame& frame) {
  nd::AnyBuffer packed(nd::ElementType::kUInt8,
                       nd::Extents({3, frame.height, frame.width}));
  uint8_t* dst = packed.data<uint8_t>();
  const size_t plane = static_cast<size_t>(frame.height) *
                       static_cast<size_t>(frame.width);
  std::fill(dst, dst + 3 * plane, 0);
  std::copy(frame.y.begin(), frame.y.end(), dst);
  std::copy(frame.u.begin(), frame.u.end(), dst + plane);
  std::copy(frame.v.begin(), frame.v.end(), dst + 2 * plane);
  return packed;
}

media::YuvFrame unpack_frame(const nd::AnyBuffer& packed) {
  const int height = static_cast<int>(packed.extents().dim(1));
  const int width = static_cast<int>(packed.extents().dim(2));
  media::YuvFrame frame(width, height);
  const uint8_t* src = packed.data<uint8_t>();
  const size_t plane = static_cast<size_t>(height) *
                       static_cast<size_t>(width);
  std::copy(src, src + frame.y.size(), frame.y.begin());
  std::copy(src + plane, src + plane + frame.u.size(), frame.u.begin());
  std::copy(src + 2 * plane, src + 2 * plane + frame.v.size(),
            frame.v.begin());
  return frame;
}

struct AdaptiveEncoder {
  std::shared_ptr<media::YuvVideo> video;
  int frame_budget_ms = 20;

  std::shared_ptr<std::mutex> mutex = std::make_shared<std::mutex>();
  std::shared_ptr<std::map<Age, std::pair<bool, std::vector<uint8_t>>>>
      encoded = std::make_shared<
          std::map<Age, std::pair<bool, std::vector<uint8_t>>>>();
  std::shared_ptr<std::atomic<int>> dropped =
      std::make_shared<std::atomic<int>>(0);

  // Runtime observations shared between decide and the encoders: queue
  // backlog per path and an EMA of the per-frame encode cost (us).
  struct PathStats {
    std::atomic<int> backlog{0};
    std::atomic<int64_t> cost_us;
    explicit PathStats(int64_t initial_cost_us) : cost_us(initial_cost_us) {}
  };
  std::shared_ptr<PathStats> hq_stats =
      std::make_shared<PathStats>(30'000);
  std::shared_ptr<PathStats> fast_stats =
      std::make_shared<PathStats>(4'000);

  Program build() const {
    ProgramBuilder pb;
    pb.field("captured", nd::ElementType::kUInt8, 3);
    pb.field("hq_frames", nd::ElementType::kUInt8, 3);
    pb.field("fast_frames", nd::ElementType::kUInt8, 3);

    auto video_ref = video;
    const int budget = frame_budget_ms;
    pb.kernel("capture")
        .store("frame", "captured", AgeExpr::relative(0), Slice::whole())
        .body([video_ref, budget](KernelContext& ctx) {
          const auto index = static_cast<size_t>(ctx.age());
          if (index >= video_ref->frames.size()) return;
          // A live source: frame `a` does not exist before t0 + a*budget.
          const auto arrival =
              std::chrono::milliseconds(ctx.age() * budget);
          const double wait = -ctx.timers().remaining_ms("t0", arrival);
          if (wait < 0) {
            std::this_thread::sleep_for(
                std::chrono::duration<double, std::milli>(-wait));
          }
          ctx.store_array("frame",
                          pack_frame(video_ref->frames[index]));
          ctx.continue_next_age();
        });

    auto drop_counter = dropped;
    auto hq = hq_stats;
    auto fast = fast_stats;
    pb.kernel("decide")
        .serial()
        .fetch("frame", "captured", AgeExpr::relative(0), Slice::whole())
        .store("hq", "hq_frames", AgeExpr::relative(0), Slice::whole())
        .store("fast", "fast_frames", AgeExpr::relative(0), Slice::whole())
        .body([budget, drop_counter, hq, fast](KernelContext& ctx) {
          // Frame `a` must be delivered by t0 + (a+2)*budget (one budget
          // of pipeline slack on top of its capture time). The expected
          // delivery time of each path is the observed backlog times the
          // observed per-frame cost — the "instrumentation data" the
          // paper's schedulers feed on.
          const auto due =
              std::chrono::milliseconds((ctx.age() + 2) * budget);
          const double remaining = ctx.timers().remaining_ms("t0", due);
          const double hq_eta_ms =
              (hq->backlog.load() + 1) *
              static_cast<double>(hq->cost_us.load()) / 1000.0;
          const double fast_eta_ms =
              (fast->backlog.load() + 1) *
              static_cast<double>(fast->cost_us.load()) / 1000.0;
          nd::AnyBuffer frame = ctx.fetch_array("frame");
          if (remaining > hq_eta_ms) {
            hq->backlog.fetch_add(1);
            ctx.store_array("hq", std::move(frame));
          } else if (remaining > fast_eta_ms) {
            fast->backlog.fetch_add(1);
            ctx.store_array("fast", std::move(frame));  // alternate path
          } else {
            drop_counter->fetch_add(1);  // playback has moved past it
          }
        });

    auto add_encoder = [&](const char* kernel, const char* field,
                           bool fast_path,
                           const std::shared_ptr<PathStats>& stats) {
      auto mu = mutex;
      auto out = encoded;
      // Not serial: each path only sees a subset of ages (the other path
      // or a drop owns the gaps), and the presentation order is restored
      // by the age-keyed output map.
      pb.kernel(kernel)
          .fetch("frame", field, AgeExpr::relative(0), Slice::whole())
          .body([mu, out, fast_path, stats](KernelContext& ctx) {
            const int64_t start = now_ns();
            media::EncoderConfig config;
            config.fast_dct = fast_path;
            config.quality = fast_path ? 30 : 80;
            auto bytes = media::encode_jpeg(
                unpack_frame(ctx.fetch_array("frame")), config);
            const int64_t cost_us = (now_ns() - start) / 1000;
            stats->backlog.fetch_sub(1);
            stats->cost_us.store((stats->cost_us.load() + cost_us) / 2);
            std::scoped_lock lock(*mu);
            out->emplace(ctx.age(),
                         std::make_pair(fast_path, std::move(bytes)));
          });
    };
    add_encoder("hq_encode", "hq_frames", false, hq_stats);
    add_encoder("fast_encode", "fast_frames", true, fast_stats);
    return pb.build();
  }
};

}  // namespace

int main(int argc, char** argv) {
  const int frames = argc > 1 ? std::atoi(argv[1]) : 40;
  const int budget_ms = argc > 2 ? std::atoi(argv[2]) : 20;

  AdaptiveEncoder encoder;
  encoder.video = std::make_shared<media::YuvVideo>(
      media::generate_synthetic_video(352, 288, frames));
  encoder.frame_budget_ms = budget_ms;

  RunOptions options;
  options.workers = argc > 3 ? std::atoi(argv[3]) : 0;

  Runtime runtime(encoder.build(), options);
  runtime.timers().set_now("t0");  // arm the global deadline timer
  const RunReport report = runtime.run();

  media::MjpegWriter writer;
  int late = 0;
  for (auto& [age, entry] : *encoder.encoded) {
    late += entry.first ? 1 : 0;
    writer.add_frame(std::move(entry.second));
  }
  writer.write_file("adaptive.mjpeg");

  std::printf("live capture at %d ms/frame, %d frames, wall %.3f s\n",
              budget_ms, frames, report.wall_s);
  std::printf("  on-schedule (hq path, naive DCT, q=80): %zu\n",
              writer.frame_count() - static_cast<size_t>(late));
  std::printf("  late (alternate path, AAN DCT, q=30):   %d\n", late);
  std::printf("  dropped (deadline passed):              %d\n",
              encoder.dropped->load());
  std::printf("-> adaptive.mjpeg (%zu bytes)\n", writer.byte_count());
  return 0;
}
