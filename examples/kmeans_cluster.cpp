// K-means clustering on the P2G runtime (paper §VII-A).
//
// Usage: kmeans_cluster [n] [k] [iterations] [workers]
//
// Runs the iterative assign/refine aging loop, prints the per-iteration
// movement of the centroids (convergence trace) and the per-kernel
// micro-benchmark table, then cross-checks against the sequential
// reference implementation.
#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "core/runtime.h"
#include "workloads/kmeans.h"

using namespace p2g;

int main(int argc, char** argv) {
  workloads::KmeansWorkload workload;
  workload.config.n = argc > 1 ? std::atoi(argv[1]) : 2000;
  workload.config.k = argc > 2 ? std::atoi(argv[2]) : 100;
  workload.config.iterations = argc > 3 ? std::atoi(argv[3]) : 10;

  RunOptions options;
  options.workers = argc > 4 ? std::atoi(argv[4]) : 0;
  workload.apply_schedule(options);

  std::printf("k-means: n=%d, K=%d, %d iterations\n\n", workload.config.n,
              workload.config.k, workload.config.iterations);

  Runtime runtime(workload.build(), options);
  const RunReport report = runtime.run();

  // Convergence trace: total centroid movement per iteration.
  const auto& snaps = *workload.snapshots;
  for (size_t i = 1; i < snaps.size(); ++i) {
    double movement = 0.0;
    for (size_t j = 0; j < snaps[i].size(); ++j) {
      const double d = snaps[i][j] - snaps[i - 1][j];
      movement += d * d;
    }
    std::printf("iteration %2zu: centroid movement %.4f\n", i,
                std::sqrt(movement));
  }

  std::printf("\nwall time: %.3f s\n\n%s\n", report.wall_s,
              report.instrumentation.to_table().c_str());

  const std::vector<double> reference =
      workloads::kmeans_sequential(workload.config);
  if (snaps.back() == reference) {
    std::printf("verified: identical to the sequential reference\n");
  } else {
    std::printf("ERROR: result differs from the sequential reference!\n");
    return 1;
  }
  return 0;
}
