// Quickstart: the paper's mul2/plus5 example (Figs. 2-6).
//
// Builds the four-kernel cyclic program with the fluent C++ API, runs it
// for a few ages on the multi-core runtime and prints exactly the
// sequence the paper describes in §V:
//   {10, 11, 12, 13, 14} {20, 22, 24, 26, 28}
//   {25, 27, 29, 31, 33} {50, 54, 58, 62, 66}
//   ...
#include <cstdio>
#include <cstdlib>

#include "core/runtime.h"
#include "workloads/mul2plus5.h"

int main(int argc, char** argv) {
  const int ages = argc > 1 ? std::atoi(argv[1]) : 4;

  p2g::workloads::Mul2Plus5 workload;
  p2g::RunOptions options;
  options.max_age = ages - 1;  // the cycle has no termination condition

  p2g::Runtime runtime(workload.build(), options);
  const p2g::RunReport report = runtime.run();

  for (const auto& row : *workload.printed) {
    const size_t half = row.size() / 2;
    std::printf("{");
    for (size_t i = 0; i < half; ++i) {
      std::printf("%s%d", i ? ", " : "", row[i]);
    }
    std::printf("} {");
    for (size_t i = half; i < row.size(); ++i) {
      std::printf("%s%d", i > half ? ", " : "", row[i]);
    }
    std::printf("}\n");
  }

  std::printf("\nran %d ages in %.3f s\n%s", ages, report.wall_s,
              report.instrumentation.to_table().c_str());
  return 0;
}
