// p2gnode: one process of a real P2G cluster — and the driver that
// launches one.
//
// Node mode (what the supervisor execs, one process per execution node):
//   p2gnode --node NAME --connect PORT --workload W [--workers K]
//           [--shm-arena FD:BYTES --shm-slots S
//            --shm-peer PEER:AFD:ABYTES:TXFD:RXFD ...]
//
// Master mode (the supervisor: forks/execs N node processes of itself):
//   p2gnode --master --workload W [--nodes N] [--workers K] [--shm]
//           [--json PATH] [--node-binary PATH] [--watchdog-ms MS]
//
// --json writes a machine-readable run summary (frames, copied bytes,
// bytes_copied_per_frame, captured-output checksum) consumed by
// scripts/soak.sh and scripts/bench_report.sh.

#include <unistd.h>

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>
#include <vector>

#include "net/cluster.h"

namespace {

int usage() {
  std::fprintf(
      stderr,
      "usage:\n"
      "  p2gnode --master --workload W [--nodes N] [--workers K] [--shm]\n"
      "          [--json PATH] [--node-binary PATH] [--watchdog-ms MS]\n"
      "  p2gnode --node NAME --connect PORT --workload W [--workers K]\n"
      "          [--shm-arena FD:BYTES --shm-slots S\n"
      "           --shm-peer PEER:AFD:ABYTES:TXFD:RXFD ...]\n");
  return 2;
}

std::vector<std::string> split(const std::string& s, char sep) {
  std::vector<std::string> parts;
  size_t start = 0;
  while (true) {
    const size_t pos = s.find(sep, start);
    if (pos == std::string::npos) {
      parts.push_back(s.substr(start));
      return parts;
    }
    parts.push_back(s.substr(start, pos - start));
    start = pos + 1;
  }
}

/// FNV-1a over every captured payload in deterministic (field, age)
/// order: one number that must match between transports.
uint64_t capture_checksum(
    const std::map<std::string, std::map<p2g::Age, std::vector<uint8_t>>>&
        captured) {
  uint64_t hash = 1469598103934665603ULL;
  const auto mix = [&hash](const void* data, size_t size) {
    const auto* p = static_cast<const uint8_t*>(data);
    for (size_t i = 0; i < size; ++i) {
      hash ^= p[i];
      hash *= 1099511628211ULL;
    }
  };
  for (const auto& [field, ages] : captured) {
    mix(field.data(), field.size());
    for (const auto& [age, payload] : ages) {
      mix(&age, sizeof(age));
      mix(payload.data(), payload.size());
    }
  }
  return hash;
}

int run_master(const p2g::net::ClusterOptions& options,
               const std::string& json_path) {
  const p2g::net::ClusterReport report = p2g::net::run_cluster(options);

  std::printf("workload=%s nodes=%d transport=%s\n",
              options.workload.c_str(), options.nodes,
              options.shm ? "shm" : "socket");
  std::printf("frames=%lld copied_bytes=%lld bytes_copied_per_frame=%.2f\n",
              static_cast<long long>(report.data_frames),
              static_cast<long long>(report.copied_bytes),
              report.bytes_copied_per_frame);
  std::printf("captured_fields=%zu checksum=%016llx wall_s=%.3f\n",
              report.captured.size(),
              static_cast<unsigned long long>(
                  capture_checksum(report.captured)),
              report.wall_s);
  if (report.timed_out) std::printf("TIMED OUT\n");
  for (const std::string& name : report.dead_nodes) {
    std::printf("dead: %s\n", name.c_str());
  }
  for (const auto& [name, err] : report.node_errors) {
    std::printf("error %s: %s\n", name.c_str(), err.c_str());
  }

  if (!json_path.empty()) {
    std::ofstream os(json_path, std::ios::trunc);
    if (!os.good()) {
      std::fprintf(stderr, "p2gnode: cannot write '%s'\n", json_path.c_str());
      return 1;
    }
    char checksum[32];
    std::snprintf(checksum, sizeof(checksum), "%016llx",
                  static_cast<unsigned long long>(
                      capture_checksum(report.captured)));
    os << "{\n"
       << "  \"workload\": \"" << options.workload << "\",\n"
       << "  \"nodes\": " << options.nodes << ",\n"
       << "  \"transport\": \"" << (options.shm ? "shm" : "socket")
       << "\",\n"
       << "  \"frames\": " << report.data_frames << ",\n"
       << "  \"copied_bytes\": " << report.copied_bytes << ",\n"
       << "  \"bytes_copied_per_frame\": " << report.bytes_copied_per_frame
       << ",\n"
       << "  \"dead_nodes\": " << report.dead_nodes.size() << ",\n"
       << "  \"timed_out\": " << (report.timed_out ? "true" : "false")
       << ",\n"
       << "  \"checksum\": \"" << checksum << "\",\n"
       << "  \"wall_s\": " << report.wall_s << "\n"
       << "}\n";
  }

  bool ok = !report.timed_out && report.dead_nodes.empty();
  for (const auto& [name, node_ok] : report.node_ok) ok = ok && node_ok;
  return ok ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  bool master = false;
  std::string json_path;
  p2g::net::ClusterOptions cluster;
  p2g::net::NodeConfig node;
  bool have_node_name = false;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto value = [&]() -> std::string {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "p2gnode: '%s' needs a value\n", arg.c_str());
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--master") {
      master = true;
    } else if (arg == "--node") {
      node.name = value();
      have_node_name = true;
    } else if (arg == "--connect") {
      node.port = static_cast<uint16_t>(std::stoi(value()));
    } else if (arg == "--workload") {
      const std::string w = value();
      cluster.workload = w;
      node.workload = w;
    } else if (arg == "--workers") {
      const int w = std::stoi(value());
      cluster.workers = w;
      node.workers = w;
    } else if (arg == "--nodes") {
      cluster.nodes = std::stoi(value());
    } else if (arg == "--shm") {
      cluster.shm = true;
    } else if (arg == "--crash") {
      const auto parts = split(value(), ':');
      if (parts.size() != 2) return usage();
      cluster.crash_node = parts[0];
      cluster.crash_after_ms = std::stoi(parts[1]);
    } else if (arg == "--crash-after-ms") {
      node.crash_after_ms = std::stoi(value());
    } else if (arg == "--json") {
      json_path = value();
    } else if (arg == "--node-binary") {
      cluster.node_binary = value();
    } else if (arg == "--watchdog-ms") {
      cluster.watchdog = std::chrono::milliseconds(std::stoll(value()));
    } else if (arg == "--shm-arena") {
      const auto parts = split(value(), ':');
      if (parts.size() != 2) return usage();
      node.arena_fd = std::stoi(parts[0]);
      node.arena_bytes = static_cast<size_t>(std::stoull(parts[1]));
    } else if (arg == "--shm-slots") {
      node.ring_slots = static_cast<uint32_t>(std::stoul(value()));
    } else if (arg == "--shm-peer") {
      const auto parts = split(value(), ':');
      if (parts.size() != 5) return usage();
      p2g::net::PeerShmConfig peer;
      peer.name = parts[0];
      peer.arena_fd = std::stoi(parts[1]);
      peer.arena_bytes = static_cast<size_t>(std::stoull(parts[2]));
      peer.tx_ring_fd = std::stoi(parts[3]);
      peer.rx_ring_fd = std::stoi(parts[4]);
      node.peers.push_back(std::move(peer));
    } else if (arg == "--help" || arg == "-h") {
      return usage();
    } else {
      std::fprintf(stderr, "p2gnode: unknown option '%s'\n", arg.c_str());
      return usage();
    }
  }

  if (master) {
    if (cluster.node_binary.empty()) {
      // Default: this binary doubles as the node binary.
      char self[4096];
      const ssize_t n = ::readlink("/proc/self/exe", self, sizeof(self) - 1);
      if (n <= 0) {
        std::fprintf(stderr, "p2gnode: cannot resolve /proc/self/exe\n");
        return 1;
      }
      self[n] = '\0';
      cluster.node_binary = self;
    }
    return run_master(cluster, json_path);
  }
  if (!have_node_name || node.port == 0 || node.workload.empty()) {
    return usage();
  }
  return p2g::net::run_node(node);
}
