// p2gcheck: concurrency analysis of the runtime's converted subsystems
// from the command line. Runs registered check suites under the seeded
// schedule explorer (src/check): a sweep of PCT schedules per suite, or a
// single replayed seed, or exhaustive enumeration for small bodies.
//
//   p2gcheck [--list] [--suite NAME] [--seeds N] [--seed S]
//            [--first-seed S] [--exhaustive] [--max-runs N]
//            [--keep-going] [--json]
//
// Ordinary suites must sweep clean; fixture suites (seeded bugs) must
// produce their expected diagnostic code — a fixture that stops failing
// means the checker regressed, and fails the run. Every finding prints a
// replay command line: the same seed always reproduces the identical
// schedule. Exit codes: 0 = all expectations met, 1 = findings in an
// ordinary suite or a fixture that found nothing, 2 = usage.

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "check/explore.h"
#include "check/registry.h"
#include "common/string_util.h"

namespace {

using p2g::check::CheckSuite;
using p2g::check::RunResult;
using p2g::check::SweepOptions;
using p2g::check::SweepResult;

int usage() {
  std::fprintf(
      stderr,
      "usage: p2gcheck [--list] [--suite NAME] [--seeds N] [--seed S]\n"
      "                [--first-seed S] [--exhaustive] [--max-runs N]\n"
      "                [--keep-going] [--json]\n"
      "  --list        list registered suites and exit\n"
      "  --suite NAME  run one suite (default: all)\n"
      "  --seeds N     schedules to explore per suite (default 100)\n"
      "  --seed S      replay exactly one seed (prints the full report)\n"
      "  --first-seed S  start the sweep at seed S (default 1)\n"
      "  --exhaustive  enumerate every schedule (small bodies only)\n"
      "  --max-runs N  exhaustive enumeration budget (default 1024)\n"
      "  --keep-going  do not stop a suite's sweep at its first finding\n"
      "  --json        machine-readable report per suite\n");
  return 2;
}

struct SuiteOutcome {
  bool pass = false;
  uint32_t runs = 0;
  std::string detail;               ///< one-line human summary
  std::vector<RunResult> failures;  ///< runs with diagnostics
};

/// A fixture passes when some run produced its expected code; an ordinary
/// suite passes when no run produced anything.
SuiteOutcome judge(const CheckSuite& suite, const SweepResult& result) {
  SuiteOutcome outcome;
  outcome.runs = result.runs;
  outcome.failures = result.failures;
  if (!suite.expect_findings) {
    outcome.pass = result.clean();
    outcome.detail = outcome.pass
                         ? (result.complete ? "clean, schedule space complete"
                                            : "clean")
                         : "findings in a suite expected to be clean";
    return outcome;
  }
  for (const RunResult& run : result.failures) {
    if (run.report.count(suite.expected_code) > 0) {
      outcome.pass = true;
      outcome.detail = "found expected " + suite.expected_code + " at seed " +
                       std::to_string(run.seed);
      return outcome;
    }
  }
  outcome.detail = result.failures.empty()
                       ? "fixture produced no findings (expected " +
                             suite.expected_code + ")"
                       : "fixture findings lack expected " +
                             suite.expected_code;
  return outcome;
}

void print_failure(const CheckSuite& suite, const RunResult& run) {
  std::printf("  seed %llu:\n", static_cast<unsigned long long>(run.seed));
  for (const auto& d : run.report.diagnostics) {
    std::printf("    %s\n", d.to_string().c_str());
  }
  std::printf("  replay: p2gcheck --suite %s --seed %llu\n",
              suite.name.c_str(), static_cast<unsigned long long>(run.seed));
}

}  // namespace

int main(int argc, char** argv) {
  bool list = false;
  bool json = false;
  bool exhaustive = false;
  bool keep_going = false;
  bool single_seed = false;
  uint64_t seed = 0;
  uint64_t first_seed = 1;
  uint32_t seeds = 100;
  uint32_t max_runs = 1024;
  std::string only;

  const auto number = [&](int& i, const char* flag) -> uint64_t {
    if (i + 1 >= argc) {
      std::fprintf(stderr, "p2gcheck: %s needs a value\n", flag);
      std::exit(usage());
    }
    return std::strtoull(argv[++i], nullptr, 10);
  };
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--list") {
      list = true;
    } else if (arg == "--json") {
      json = true;
    } else if (arg == "--exhaustive") {
      exhaustive = true;
    } else if (arg == "--keep-going") {
      keep_going = true;
    } else if (arg == "--suite") {
      if (i + 1 >= argc) return usage();
      only = argv[++i];
    } else if (arg == "--seed") {
      single_seed = true;
      seed = number(i, "--seed");
    } else if (arg == "--seeds") {
      seeds = static_cast<uint32_t>(number(i, "--seeds"));
    } else if (arg == "--first-seed") {
      first_seed = number(i, "--first-seed");
    } else if (arg == "--max-runs") {
      max_runs = static_cast<uint32_t>(number(i, "--max-runs"));
    } else if (arg == "--help" || arg == "-h") {
      return usage();
    } else {
      std::fprintf(stderr, "p2gcheck: unknown option '%s'\n", arg.c_str());
      return usage();
    }
  }

  p2g::check::register_builtin_suites();

  if (list) {
    for (const CheckSuite& suite : p2g::check::suites()) {
      std::printf("%-32s %s%s\n", suite.name.c_str(),
                  suite.description.c_str(),
                  suite.expect_findings
                      ? (" [fixture: expects " + suite.expected_code + "]")
                            .c_str()
                      : "");
    }
    return 0;
  }

  std::vector<const CheckSuite*> selected;
  for (const CheckSuite& suite : p2g::check::suites()) {
    if (only.empty() || suite.name == only) selected.push_back(&suite);
  }
  if (selected.empty()) {
    std::fprintf(stderr, "p2gcheck: no suite named '%s'\n", only.c_str());
    return 2;
  }

  bool all_pass = true;
  std::string json_out = "{";
  bool json_first = true;
  for (const CheckSuite* suite : selected) {
    SweepOptions options;
    options.exhaustive = exhaustive;
    options.max_runs = max_runs;
    options.stop_on_finding = !keep_going;
    SweepResult result;
    if (single_seed) {
      RunResult run = p2g::check::run_once(suite->body, seed);
      result.runs = 1;
      if (!run.report.empty()) result.failures.push_back(std::move(run));
    } else {
      options.first_seed = first_seed;
      options.seeds = seeds;
      result = p2g::check::sweep(suite->body, options);
    }
    const SuiteOutcome outcome = judge(*suite, result);
    all_pass = all_pass && outcome.pass;

    if (json) {
      if (!json_first) json_out += ",";
      json_first = false;
      json_out += "\"" + p2g::json_escape(suite->name) +
                  "\":{\"pass\":" + (outcome.pass ? "true" : "false") +
                  ",\"runs\":" + std::to_string(outcome.runs) +
                  ",\"failures\":[";
      for (size_t i = 0; i < outcome.failures.size(); ++i) {
        if (i > 0) json_out += ",";
        json_out += "{\"seed\":" + std::to_string(outcome.failures[i].seed) +
                    ",\"report\":" + outcome.failures[i].report.to_json() +
                    "}";
      }
      json_out += "]}";
      continue;
    }

    std::printf("%s %s (%u run%s): %s\n", outcome.pass ? "PASS" : "FAIL",
                suite->name.c_str(), outcome.runs,
                outcome.runs == 1 ? "" : "s", outcome.detail.c_str());
    // Show the diagnostics when something went wrong (ordinary suite with
    // findings, or a fixture that found the wrong thing) — and always on a
    // single-seed replay, which exists to inspect a finding.
    if (!outcome.pass || single_seed) {
      for (const RunResult& run : outcome.failures) {
        print_failure(*suite, run);
      }
    }
  }
  if (json) {
    json_out += "}";
    std::printf("%s\n", json_out.c_str());
  }
  return all_pass ? 0 : 1;
}
