// p2glint: static analysis of kernel-language programs from the command
// line. Exit codes: 0 = clean (or warnings only), 1 = errors found (or
// warnings under --werror) or a file failed to parse/compile, 2 = usage.
//
//   p2glint [--json] [--werror] [--no-unused] file.p2g...
//
// Text output is one diagnostic per line with source line numbers; --json
// emits one report object per file, keyed by path.

#include <cstdio>
#include <string>
#include <vector>

#include "analysis/lang_lint.h"
#include "common/error.h"
#include "common/string_util.h"

namespace {

int usage() {
  std::fprintf(stderr,
               "usage: p2glint [--json] [--werror] [--no-unused] "
               "file.p2g...\n"
               "  --json       machine-readable report per file\n"
               "  --werror     treat warnings as errors\n"
               "  --no-unused  skip unused-field/unreachable-kernel "
               "warnings (P2G-W005/6)\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  bool json = false;
  bool werror = false;
  p2g::analysis::LintOptions options;
  std::vector<std::string> files;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--json") {
      json = true;
    } else if (arg == "--werror") {
      werror = true;
    } else if (arg == "--no-unused") {
      options.warn_unused = false;
    } else if (arg == "--help" || arg == "-h") {
      return usage();
    } else if (!arg.empty() && arg[0] == '-') {
      std::fprintf(stderr, "p2glint: unknown option '%s'\n", arg.c_str());
      return usage();
    } else {
      files.push_back(arg);
    }
  }
  if (files.empty()) return usage();

  bool failed = false;
  std::string json_out = "{";
  for (size_t i = 0; i < files.size(); ++i) {
    const std::string& path = files[i];
    try {
      const p2g::analysis::LintReport report =
          p2g::analysis::lint_file(path, options);
      if (json) {
        if (i > 0) json_out += ",";
        json_out += "\"" + p2g::json_escape(path) + "\":" + report.to_json();
      } else if (!report.empty()) {
        for (const p2g::analysis::Diagnostic& d : report.diagnostics) {
          std::printf("%s: %s\n", path.c_str(), d.to_string().c_str());
        }
      }
      if (report.has_errors() || (werror && !report.empty())) failed = true;
    } catch (const p2g::Error& e) {
      // Parse/sema/io failures: report and keep linting the other files.
      if (json) {
        if (i > 0) json_out += ",";
        json_out += "\"" + p2g::json_escape(path) + "\":{\"error\":\"" +
                    p2g::json_escape(e.what()) + "\"}";
      } else {
        std::fprintf(stderr, "%s: %s\n", path.c_str(), e.what());
      }
      failed = true;
    }
  }
  if (json) {
    json_out += "}";
    std::printf("%s\n", json_out.c_str());
  }
  return failed ? 1 : 0;
}
