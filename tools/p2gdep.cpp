// p2gdep: symbolic dependence & footprint analysis of kernel-language
// programs from the command line. For every file it prints the access
// classification (pointwise / stencil / stream / reduction / broadcast),
// producer -> consumer dependence edges with age and element distances,
// per-age footprint bounds, the independence certificates the runtime can
// use as a dispatch fast path, and the full diagnostic report (including
// the kInfo fusion-legality and footprint-bound reports p2glint omits).
//
//   p2gdep [--json] [--werror] file.p2g...
//
// Exit codes: 0 = clean (or warnings only), 1 = errors found (or warnings
// under --werror) or a file failed to parse/compile, 2 = usage. kInfo
// reports never affect the exit code.

#include <cstdio>
#include <string>
#include <vector>

#include "analysis/lang_lint.h"
#include "common/error.h"
#include "common/string_util.h"

namespace {

int usage() {
  std::fprintf(stderr,
               "usage: p2gdep [--json] [--werror] file.p2g...\n"
               "  --json    machine-readable report per file\n"
               "  --werror  treat warnings as errors (info reports are "
               "always exempt)\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  bool json = false;
  bool werror = false;
  std::vector<std::string> files;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--json") {
      json = true;
    } else if (arg == "--werror") {
      werror = true;
    } else if (arg == "--help" || arg == "-h") {
      return usage();
    } else if (!arg.empty() && arg[0] == '-') {
      std::fprintf(stderr, "p2gdep: unknown option '%s'\n", arg.c_str());
      return usage();
    } else {
      files.push_back(arg);
    }
  }
  if (files.empty()) return usage();

  bool failed = false;
  std::string json_out = "{";
  for (size_t i = 0; i < files.size(); ++i) {
    const std::string& path = files[i];
    try {
      const p2g::analysis::DependenceReport report =
          p2g::analysis::dep_file(path);
      if (json) {
        if (i > 0) json_out += ",";
        json_out += "\"" + p2g::json_escape(path) + "\":" + report.to_json();
      } else {
        std::printf("%s:\n%s", path.c_str(), report.to_text().c_str());
      }
      if (report.diagnostics.has_errors() ||
          (werror && report.diagnostics.warning_count() > 0)) {
        failed = true;
      }
    } catch (const p2g::Error& e) {
      if (json) {
        if (i > 0) json_out += ",";
        json_out += "\"" + p2g::json_escape(path) + "\":{\"error\":\"" +
                    p2g::json_escape(e.what()) + "\"}";
      } else {
        std::fprintf(stderr, "%s: %s\n", path.c_str(), e.what());
      }
      failed = true;
    }
  }
  if (json) {
    json_out += "}";
    std::printf("%s\n", json_out.c_str());
  }
  return failed ? 1 : 0;
}
