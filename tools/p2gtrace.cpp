// p2gtrace: critical-path analysis of a p2g trace file from the command
// line. Reads the Chrome trace-event JSON this repo's TraceCollector (or
// the distributed master's merged-trace stitcher) writes, reconstructs
// the causal span DAG, and prints the per-frame critical paths with
// latency attributed to queue/exec/wire/store/recovery buckets.
//
//   p2gtrace [--top N] [--summary] trace.json
//
// Exit codes: 0 = analyzed (even if no traced frames), 1 = unreadable or
// unparseable file, 2 = usage.

#include <cstdio>
#include <cstdlib>
#include <string>

#include "common/error.h"
#include "obs/causal.h"
#include "obs/trace_reader.h"

namespace {

int usage() {
  std::fprintf(stderr,
               "usage: p2gtrace [--top N] [--summary] trace.json\n"
               "  --top N    show the N longest critical paths "
               "(default 10)\n"
               "  --summary  document statistics only, no paths\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  size_t top_k = 10;
  bool summary_only = false;
  std::string file;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--top") {
      if (i + 1 >= argc) return usage();
      top_k = static_cast<size_t>(std::strtoul(argv[++i], nullptr, 10));
    } else if (arg == "--summary") {
      summary_only = true;
    } else if (arg == "--help" || arg == "-h") {
      return usage();
    } else if (!arg.empty() && arg[0] == '-') {
      std::fprintf(stderr, "p2gtrace: unknown option '%s'\n", arg.c_str());
      return usage();
    } else if (!file.empty()) {
      return usage();
    } else {
      file = arg;
    }
  }
  if (file.empty()) return usage();

  p2g::obs::TraceDocument doc;
  try {
    doc = p2g::obs::read_trace_file(file);
  } catch (const p2g::Error& e) {
    std::fprintf(stderr, "p2gtrace: %s\n", e.what());
    return 1;
  }

  std::printf("%s: %zu span(s) across %zu lane(s), %zu flow arrow(s) "
              "(%zu cross-node), %zu counter sample(s), %zu flight "
              "span(s)\n",
              file.c_str(), doc.spans.size(), doc.process_names.size(),
              doc.flow_starts, doc.cross_node_flows(),
              doc.counter_events, doc.flight_spans);
  if (doc.malformed_lines > 0) {
    std::fprintf(stderr, "p2gtrace: warning: %zu malformed line(s)\n",
                 doc.malformed_lines);
  }
  if (summary_only) return 0;

  const p2g::obs::CriticalPathReport report =
      p2g::obs::analyze_critical_paths(doc.spans);
  std::fputs(report.to_string(doc.spans, top_k).c_str(), stdout);
  return 0;
}
