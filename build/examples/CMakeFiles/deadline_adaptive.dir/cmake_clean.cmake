file(REMOVE_RECURSE
  "CMakeFiles/deadline_adaptive.dir/deadline_adaptive.cpp.o"
  "CMakeFiles/deadline_adaptive.dir/deadline_adaptive.cpp.o.d"
  "deadline_adaptive"
  "deadline_adaptive.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/deadline_adaptive.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
