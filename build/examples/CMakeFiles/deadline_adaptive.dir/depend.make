# Empty dependencies file for deadline_adaptive.
# This may be replaced when dependencies are built.
