# Empty dependencies file for mjpeg_encode.
# This may be replaced when dependencies are built.
