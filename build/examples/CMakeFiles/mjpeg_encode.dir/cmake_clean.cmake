file(REMOVE_RECURSE
  "CMakeFiles/mjpeg_encode.dir/mjpeg_encode.cpp.o"
  "CMakeFiles/mjpeg_encode.dir/mjpeg_encode.cpp.o.d"
  "mjpeg_encode"
  "mjpeg_encode.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mjpeg_encode.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
