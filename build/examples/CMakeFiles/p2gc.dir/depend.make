# Empty dependencies file for p2gc.
# This may be replaced when dependencies are built.
