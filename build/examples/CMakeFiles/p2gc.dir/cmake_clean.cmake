file(REMOVE_RECURSE
  "CMakeFiles/p2gc.dir/p2gc.cpp.o"
  "CMakeFiles/p2gc.dir/p2gc.cpp.o.d"
  "p2gc"
  "p2gc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/p2gc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
