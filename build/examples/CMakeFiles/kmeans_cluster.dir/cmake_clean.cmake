file(REMOVE_RECURSE
  "CMakeFiles/kmeans_cluster.dir/kmeans_cluster.cpp.o"
  "CMakeFiles/kmeans_cluster.dir/kmeans_cluster.cpp.o.d"
  "kmeans_cluster"
  "kmeans_cluster.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kmeans_cluster.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
