# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/common_test[1]_include.cmake")
include("/root/repo/build/tests/nd_test[1]_include.cmake")
include("/root/repo/build/tests/field_test[1]_include.cmake")
include("/root/repo/build/tests/program_test[1]_include.cmake")
include("/root/repo/build/tests/runtime_test[1]_include.cmake")
include("/root/repo/build/tests/media_test[1]_include.cmake")
include("/root/repo/build/tests/workloads_test[1]_include.cmake")
include("/root/repo/build/tests/graph_test[1]_include.cmake")
include("/root/repo/build/tests/dist_test[1]_include.cmake")
include("/root/repo/build/tests/lang_test[1]_include.cmake")
include("/root/repo/build/tests/property_test[1]_include.cmake")
include("/root/repo/build/tests/motion_test[1]_include.cmake")
include("/root/repo/build/tests/adaptive_test[1]_include.cmake")
include("/root/repo/build/tests/core_detail_test[1]_include.cmake")
include("/root/repo/build/tests/avi_test[1]_include.cmake")
include("/root/repo/build/tests/trace_test[1]_include.cmake")
