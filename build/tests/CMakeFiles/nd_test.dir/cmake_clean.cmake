file(REMOVE_RECURSE
  "CMakeFiles/nd_test.dir/nd_test.cpp.o"
  "CMakeFiles/nd_test.dir/nd_test.cpp.o.d"
  "nd_test"
  "nd_test.pdb"
  "nd_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nd_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
