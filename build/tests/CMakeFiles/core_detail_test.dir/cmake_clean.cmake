file(REMOVE_RECURSE
  "CMakeFiles/core_detail_test.dir/core_detail_test.cpp.o"
  "CMakeFiles/core_detail_test.dir/core_detail_test.cpp.o.d"
  "core_detail_test"
  "core_detail_test.pdb"
  "core_detail_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_detail_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
