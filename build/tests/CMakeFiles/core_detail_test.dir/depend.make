# Empty dependencies file for core_detail_test.
# This may be replaced when dependencies are built.
