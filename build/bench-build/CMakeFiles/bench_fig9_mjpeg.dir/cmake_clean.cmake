file(REMOVE_RECURSE
  "../bench/bench_fig9_mjpeg"
  "../bench/bench_fig9_mjpeg.pdb"
  "CMakeFiles/bench_fig9_mjpeg.dir/bench_fig9_mjpeg.cpp.o"
  "CMakeFiles/bench_fig9_mjpeg.dir/bench_fig9_mjpeg.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig9_mjpeg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
