# Empty dependencies file for bench_fig9_mjpeg.
# This may be replaced when dependencies are built.
