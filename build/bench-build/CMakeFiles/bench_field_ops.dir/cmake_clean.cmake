file(REMOVE_RECURSE
  "../bench/bench_field_ops"
  "../bench/bench_field_ops.pdb"
  "CMakeFiles/bench_field_ops.dir/bench_field_ops.cpp.o"
  "CMakeFiles/bench_field_ops.dir/bench_field_ops.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_field_ops.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
