# Empty compiler generated dependencies file for bench_table2_mjpeg_micro.
# This may be replaced when dependencies are built.
