file(REMOVE_RECURSE
  "../bench/bench_partitioning"
  "../bench/bench_partitioning.pdb"
  "CMakeFiles/bench_partitioning.dir/bench_partitioning.cpp.o"
  "CMakeFiles/bench_partitioning.dir/bench_partitioning.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_partitioning.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
