# Empty dependencies file for bench_fig10_kmeans.
# This may be replaced when dependencies are built.
