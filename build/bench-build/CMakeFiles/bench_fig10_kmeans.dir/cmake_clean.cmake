file(REMOVE_RECURSE
  "../bench/bench_fig10_kmeans"
  "../bench/bench_fig10_kmeans.pdb"
  "CMakeFiles/bench_fig10_kmeans.dir/bench_fig10_kmeans.cpp.o"
  "CMakeFiles/bench_fig10_kmeans.dir/bench_fig10_kmeans.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig10_kmeans.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
