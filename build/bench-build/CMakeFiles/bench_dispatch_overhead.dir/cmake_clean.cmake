file(REMOVE_RECURSE
  "../bench/bench_dispatch_overhead"
  "../bench/bench_dispatch_overhead.pdb"
  "CMakeFiles/bench_dispatch_overhead.dir/bench_dispatch_overhead.cpp.o"
  "CMakeFiles/bench_dispatch_overhead.dir/bench_dispatch_overhead.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_dispatch_overhead.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
