file(REMOVE_RECURSE
  "../bench/bench_ablation_age_priority"
  "../bench/bench_ablation_age_priority.pdb"
  "CMakeFiles/bench_ablation_age_priority.dir/bench_ablation_age_priority.cpp.o"
  "CMakeFiles/bench_ablation_age_priority.dir/bench_ablation_age_priority.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_age_priority.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
