# Empty compiler generated dependencies file for bench_ablation_age_priority.
# This may be replaced when dependencies are built.
