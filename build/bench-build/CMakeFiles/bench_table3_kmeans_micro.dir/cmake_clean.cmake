file(REMOVE_RECURSE
  "../bench/bench_table3_kmeans_micro"
  "../bench/bench_table3_kmeans_micro.pdb"
  "CMakeFiles/bench_table3_kmeans_micro.dir/bench_table3_kmeans_micro.cpp.o"
  "CMakeFiles/bench_table3_kmeans_micro.dir/bench_table3_kmeans_micro.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table3_kmeans_micro.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
