# Empty compiler generated dependencies file for bench_lang_overhead.
# This may be replaced when dependencies are built.
