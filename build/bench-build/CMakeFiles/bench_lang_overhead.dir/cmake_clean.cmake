file(REMOVE_RECURSE
  "../bench/bench_lang_overhead"
  "../bench/bench_lang_overhead.pdb"
  "CMakeFiles/bench_lang_overhead.dir/bench_lang_overhead.cpp.o"
  "CMakeFiles/bench_lang_overhead.dir/bench_lang_overhead.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_lang_overhead.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
