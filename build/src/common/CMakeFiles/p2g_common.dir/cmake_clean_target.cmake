file(REMOVE_RECURSE
  "libp2g_common.a"
)
