file(REMOVE_RECURSE
  "CMakeFiles/p2g_common.dir/dynamic_bitset.cpp.o"
  "CMakeFiles/p2g_common.dir/dynamic_bitset.cpp.o.d"
  "CMakeFiles/p2g_common.dir/error.cpp.o"
  "CMakeFiles/p2g_common.dir/error.cpp.o.d"
  "CMakeFiles/p2g_common.dir/logging.cpp.o"
  "CMakeFiles/p2g_common.dir/logging.cpp.o.d"
  "CMakeFiles/p2g_common.dir/stats.cpp.o"
  "CMakeFiles/p2g_common.dir/stats.cpp.o.d"
  "CMakeFiles/p2g_common.dir/string_util.cpp.o"
  "CMakeFiles/p2g_common.dir/string_util.cpp.o.d"
  "libp2g_common.a"
  "libp2g_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/p2g_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
