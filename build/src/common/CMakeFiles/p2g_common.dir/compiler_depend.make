# Empty compiler generated dependencies file for p2g_common.
# This may be replaced when dependencies are built.
