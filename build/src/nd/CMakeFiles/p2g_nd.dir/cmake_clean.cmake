file(REMOVE_RECURSE
  "CMakeFiles/p2g_nd.dir/buffer.cpp.o"
  "CMakeFiles/p2g_nd.dir/buffer.cpp.o.d"
  "CMakeFiles/p2g_nd.dir/extents.cpp.o"
  "CMakeFiles/p2g_nd.dir/extents.cpp.o.d"
  "CMakeFiles/p2g_nd.dir/region.cpp.o"
  "CMakeFiles/p2g_nd.dir/region.cpp.o.d"
  "CMakeFiles/p2g_nd.dir/slice.cpp.o"
  "CMakeFiles/p2g_nd.dir/slice.cpp.o.d"
  "libp2g_nd.a"
  "libp2g_nd.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/p2g_nd.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
