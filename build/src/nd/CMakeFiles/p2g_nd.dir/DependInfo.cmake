
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/nd/buffer.cpp" "src/nd/CMakeFiles/p2g_nd.dir/buffer.cpp.o" "gcc" "src/nd/CMakeFiles/p2g_nd.dir/buffer.cpp.o.d"
  "/root/repo/src/nd/extents.cpp" "src/nd/CMakeFiles/p2g_nd.dir/extents.cpp.o" "gcc" "src/nd/CMakeFiles/p2g_nd.dir/extents.cpp.o.d"
  "/root/repo/src/nd/region.cpp" "src/nd/CMakeFiles/p2g_nd.dir/region.cpp.o" "gcc" "src/nd/CMakeFiles/p2g_nd.dir/region.cpp.o.d"
  "/root/repo/src/nd/slice.cpp" "src/nd/CMakeFiles/p2g_nd.dir/slice.cpp.o" "gcc" "src/nd/CMakeFiles/p2g_nd.dir/slice.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/p2g_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
