# Empty compiler generated dependencies file for p2g_nd.
# This may be replaced when dependencies are built.
