file(REMOVE_RECURSE
  "libp2g_nd.a"
)
