file(REMOVE_RECURSE
  "CMakeFiles/p2g_graph.dir/partition.cpp.o"
  "CMakeFiles/p2g_graph.dir/partition.cpp.o.d"
  "CMakeFiles/p2g_graph.dir/static_graph.cpp.o"
  "CMakeFiles/p2g_graph.dir/static_graph.cpp.o.d"
  "CMakeFiles/p2g_graph.dir/tabu.cpp.o"
  "CMakeFiles/p2g_graph.dir/tabu.cpp.o.d"
  "CMakeFiles/p2g_graph.dir/topology.cpp.o"
  "CMakeFiles/p2g_graph.dir/topology.cpp.o.d"
  "libp2g_graph.a"
  "libp2g_graph.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/p2g_graph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
