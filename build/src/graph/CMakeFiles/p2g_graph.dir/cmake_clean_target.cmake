file(REMOVE_RECURSE
  "libp2g_graph.a"
)
