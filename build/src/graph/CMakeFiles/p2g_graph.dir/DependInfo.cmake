
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/graph/partition.cpp" "src/graph/CMakeFiles/p2g_graph.dir/partition.cpp.o" "gcc" "src/graph/CMakeFiles/p2g_graph.dir/partition.cpp.o.d"
  "/root/repo/src/graph/static_graph.cpp" "src/graph/CMakeFiles/p2g_graph.dir/static_graph.cpp.o" "gcc" "src/graph/CMakeFiles/p2g_graph.dir/static_graph.cpp.o.d"
  "/root/repo/src/graph/tabu.cpp" "src/graph/CMakeFiles/p2g_graph.dir/tabu.cpp.o" "gcc" "src/graph/CMakeFiles/p2g_graph.dir/tabu.cpp.o.d"
  "/root/repo/src/graph/topology.cpp" "src/graph/CMakeFiles/p2g_graph.dir/topology.cpp.o" "gcc" "src/graph/CMakeFiles/p2g_graph.dir/topology.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/p2g_core.dir/DependInfo.cmake"
  "/root/repo/build/src/nd/CMakeFiles/p2g_nd.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/p2g_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
