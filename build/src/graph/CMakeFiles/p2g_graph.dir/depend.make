# Empty dependencies file for p2g_graph.
# This may be replaced when dependencies are built.
