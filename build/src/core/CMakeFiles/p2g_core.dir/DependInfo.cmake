
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/context.cpp" "src/core/CMakeFiles/p2g_core.dir/context.cpp.o" "gcc" "src/core/CMakeFiles/p2g_core.dir/context.cpp.o.d"
  "/root/repo/src/core/dependency.cpp" "src/core/CMakeFiles/p2g_core.dir/dependency.cpp.o" "gcc" "src/core/CMakeFiles/p2g_core.dir/dependency.cpp.o.d"
  "/root/repo/src/core/field.cpp" "src/core/CMakeFiles/p2g_core.dir/field.cpp.o" "gcc" "src/core/CMakeFiles/p2g_core.dir/field.cpp.o.d"
  "/root/repo/src/core/instrumentation.cpp" "src/core/CMakeFiles/p2g_core.dir/instrumentation.cpp.o" "gcc" "src/core/CMakeFiles/p2g_core.dir/instrumentation.cpp.o.d"
  "/root/repo/src/core/kernel.cpp" "src/core/CMakeFiles/p2g_core.dir/kernel.cpp.o" "gcc" "src/core/CMakeFiles/p2g_core.dir/kernel.cpp.o.d"
  "/root/repo/src/core/program.cpp" "src/core/CMakeFiles/p2g_core.dir/program.cpp.o" "gcc" "src/core/CMakeFiles/p2g_core.dir/program.cpp.o.d"
  "/root/repo/src/core/ready_queue.cpp" "src/core/CMakeFiles/p2g_core.dir/ready_queue.cpp.o" "gcc" "src/core/CMakeFiles/p2g_core.dir/ready_queue.cpp.o.d"
  "/root/repo/src/core/runtime.cpp" "src/core/CMakeFiles/p2g_core.dir/runtime.cpp.o" "gcc" "src/core/CMakeFiles/p2g_core.dir/runtime.cpp.o.d"
  "/root/repo/src/core/timer.cpp" "src/core/CMakeFiles/p2g_core.dir/timer.cpp.o" "gcc" "src/core/CMakeFiles/p2g_core.dir/timer.cpp.o.d"
  "/root/repo/src/core/trace.cpp" "src/core/CMakeFiles/p2g_core.dir/trace.cpp.o" "gcc" "src/core/CMakeFiles/p2g_core.dir/trace.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/nd/CMakeFiles/p2g_nd.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/p2g_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
