# Empty compiler generated dependencies file for p2g_core.
# This may be replaced when dependencies are built.
