file(REMOVE_RECURSE
  "CMakeFiles/p2g_core.dir/context.cpp.o"
  "CMakeFiles/p2g_core.dir/context.cpp.o.d"
  "CMakeFiles/p2g_core.dir/dependency.cpp.o"
  "CMakeFiles/p2g_core.dir/dependency.cpp.o.d"
  "CMakeFiles/p2g_core.dir/field.cpp.o"
  "CMakeFiles/p2g_core.dir/field.cpp.o.d"
  "CMakeFiles/p2g_core.dir/instrumentation.cpp.o"
  "CMakeFiles/p2g_core.dir/instrumentation.cpp.o.d"
  "CMakeFiles/p2g_core.dir/kernel.cpp.o"
  "CMakeFiles/p2g_core.dir/kernel.cpp.o.d"
  "CMakeFiles/p2g_core.dir/program.cpp.o"
  "CMakeFiles/p2g_core.dir/program.cpp.o.d"
  "CMakeFiles/p2g_core.dir/ready_queue.cpp.o"
  "CMakeFiles/p2g_core.dir/ready_queue.cpp.o.d"
  "CMakeFiles/p2g_core.dir/runtime.cpp.o"
  "CMakeFiles/p2g_core.dir/runtime.cpp.o.d"
  "CMakeFiles/p2g_core.dir/timer.cpp.o"
  "CMakeFiles/p2g_core.dir/timer.cpp.o.d"
  "CMakeFiles/p2g_core.dir/trace.cpp.o"
  "CMakeFiles/p2g_core.dir/trace.cpp.o.d"
  "libp2g_core.a"
  "libp2g_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/p2g_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
