file(REMOVE_RECURSE
  "libp2g_core.a"
)
