file(REMOVE_RECURSE
  "libp2g_dist.a"
)
