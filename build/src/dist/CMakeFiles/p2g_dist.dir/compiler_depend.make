# Empty compiler generated dependencies file for p2g_dist.
# This may be replaced when dependencies are built.
