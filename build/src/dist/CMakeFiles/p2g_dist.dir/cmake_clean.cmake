file(REMOVE_RECURSE
  "CMakeFiles/p2g_dist.dir/bus.cpp.o"
  "CMakeFiles/p2g_dist.dir/bus.cpp.o.d"
  "CMakeFiles/p2g_dist.dir/exec_node.cpp.o"
  "CMakeFiles/p2g_dist.dir/exec_node.cpp.o.d"
  "CMakeFiles/p2g_dist.dir/master.cpp.o"
  "CMakeFiles/p2g_dist.dir/master.cpp.o.d"
  "CMakeFiles/p2g_dist.dir/message.cpp.o"
  "CMakeFiles/p2g_dist.dir/message.cpp.o.d"
  "libp2g_dist.a"
  "libp2g_dist.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/p2g_dist.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
