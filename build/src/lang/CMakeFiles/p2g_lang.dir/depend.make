# Empty dependencies file for p2g_lang.
# This may be replaced when dependencies are built.
