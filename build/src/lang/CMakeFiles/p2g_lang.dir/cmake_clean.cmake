file(REMOVE_RECURSE
  "CMakeFiles/p2g_lang.dir/codegen.cpp.o"
  "CMakeFiles/p2g_lang.dir/codegen.cpp.o.d"
  "CMakeFiles/p2g_lang.dir/driver.cpp.o"
  "CMakeFiles/p2g_lang.dir/driver.cpp.o.d"
  "CMakeFiles/p2g_lang.dir/interp.cpp.o"
  "CMakeFiles/p2g_lang.dir/interp.cpp.o.d"
  "CMakeFiles/p2g_lang.dir/lexer.cpp.o"
  "CMakeFiles/p2g_lang.dir/lexer.cpp.o.d"
  "CMakeFiles/p2g_lang.dir/parser.cpp.o"
  "CMakeFiles/p2g_lang.dir/parser.cpp.o.d"
  "CMakeFiles/p2g_lang.dir/sema.cpp.o"
  "CMakeFiles/p2g_lang.dir/sema.cpp.o.d"
  "libp2g_lang.a"
  "libp2g_lang.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/p2g_lang.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
