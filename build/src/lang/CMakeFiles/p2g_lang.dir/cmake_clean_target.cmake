file(REMOVE_RECURSE
  "libp2g_lang.a"
)
