
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/lang/codegen.cpp" "src/lang/CMakeFiles/p2g_lang.dir/codegen.cpp.o" "gcc" "src/lang/CMakeFiles/p2g_lang.dir/codegen.cpp.o.d"
  "/root/repo/src/lang/driver.cpp" "src/lang/CMakeFiles/p2g_lang.dir/driver.cpp.o" "gcc" "src/lang/CMakeFiles/p2g_lang.dir/driver.cpp.o.d"
  "/root/repo/src/lang/interp.cpp" "src/lang/CMakeFiles/p2g_lang.dir/interp.cpp.o" "gcc" "src/lang/CMakeFiles/p2g_lang.dir/interp.cpp.o.d"
  "/root/repo/src/lang/lexer.cpp" "src/lang/CMakeFiles/p2g_lang.dir/lexer.cpp.o" "gcc" "src/lang/CMakeFiles/p2g_lang.dir/lexer.cpp.o.d"
  "/root/repo/src/lang/parser.cpp" "src/lang/CMakeFiles/p2g_lang.dir/parser.cpp.o" "gcc" "src/lang/CMakeFiles/p2g_lang.dir/parser.cpp.o.d"
  "/root/repo/src/lang/sema.cpp" "src/lang/CMakeFiles/p2g_lang.dir/sema.cpp.o" "gcc" "src/lang/CMakeFiles/p2g_lang.dir/sema.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/p2g_core.dir/DependInfo.cmake"
  "/root/repo/build/src/nd/CMakeFiles/p2g_nd.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/p2g_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
