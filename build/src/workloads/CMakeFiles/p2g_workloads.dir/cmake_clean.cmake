file(REMOVE_RECURSE
  "CMakeFiles/p2g_workloads.dir/kmeans.cpp.o"
  "CMakeFiles/p2g_workloads.dir/kmeans.cpp.o.d"
  "CMakeFiles/p2g_workloads.dir/mjpeg_workload.cpp.o"
  "CMakeFiles/p2g_workloads.dir/mjpeg_workload.cpp.o.d"
  "CMakeFiles/p2g_workloads.dir/motion.cpp.o"
  "CMakeFiles/p2g_workloads.dir/motion.cpp.o.d"
  "CMakeFiles/p2g_workloads.dir/mul2plus5.cpp.o"
  "CMakeFiles/p2g_workloads.dir/mul2plus5.cpp.o.d"
  "CMakeFiles/p2g_workloads.dir/standalone_mjpeg.cpp.o"
  "CMakeFiles/p2g_workloads.dir/standalone_mjpeg.cpp.o.d"
  "libp2g_workloads.a"
  "libp2g_workloads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/p2g_workloads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
