file(REMOVE_RECURSE
  "libp2g_workloads.a"
)
