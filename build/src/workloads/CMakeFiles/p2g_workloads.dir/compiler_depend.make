# Empty compiler generated dependencies file for p2g_workloads.
# This may be replaced when dependencies are built.
