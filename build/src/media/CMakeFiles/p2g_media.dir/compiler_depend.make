# Empty compiler generated dependencies file for p2g_media.
# This may be replaced when dependencies are built.
