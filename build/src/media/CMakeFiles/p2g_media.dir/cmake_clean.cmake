file(REMOVE_RECURSE
  "CMakeFiles/p2g_media.dir/avi.cpp.o"
  "CMakeFiles/p2g_media.dir/avi.cpp.o.d"
  "CMakeFiles/p2g_media.dir/bitstream.cpp.o"
  "CMakeFiles/p2g_media.dir/bitstream.cpp.o.d"
  "CMakeFiles/p2g_media.dir/dct.cpp.o"
  "CMakeFiles/p2g_media.dir/dct.cpp.o.d"
  "CMakeFiles/p2g_media.dir/huffman.cpp.o"
  "CMakeFiles/p2g_media.dir/huffman.cpp.o.d"
  "CMakeFiles/p2g_media.dir/jpeg.cpp.o"
  "CMakeFiles/p2g_media.dir/jpeg.cpp.o.d"
  "CMakeFiles/p2g_media.dir/mjpeg.cpp.o"
  "CMakeFiles/p2g_media.dir/mjpeg.cpp.o.d"
  "CMakeFiles/p2g_media.dir/quant.cpp.o"
  "CMakeFiles/p2g_media.dir/quant.cpp.o.d"
  "CMakeFiles/p2g_media.dir/yuv.cpp.o"
  "CMakeFiles/p2g_media.dir/yuv.cpp.o.d"
  "libp2g_media.a"
  "libp2g_media.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/p2g_media.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
