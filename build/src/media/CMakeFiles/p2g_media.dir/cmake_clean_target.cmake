file(REMOVE_RECURSE
  "libp2g_media.a"
)
