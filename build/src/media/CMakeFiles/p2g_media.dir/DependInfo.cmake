
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/media/avi.cpp" "src/media/CMakeFiles/p2g_media.dir/avi.cpp.o" "gcc" "src/media/CMakeFiles/p2g_media.dir/avi.cpp.o.d"
  "/root/repo/src/media/bitstream.cpp" "src/media/CMakeFiles/p2g_media.dir/bitstream.cpp.o" "gcc" "src/media/CMakeFiles/p2g_media.dir/bitstream.cpp.o.d"
  "/root/repo/src/media/dct.cpp" "src/media/CMakeFiles/p2g_media.dir/dct.cpp.o" "gcc" "src/media/CMakeFiles/p2g_media.dir/dct.cpp.o.d"
  "/root/repo/src/media/huffman.cpp" "src/media/CMakeFiles/p2g_media.dir/huffman.cpp.o" "gcc" "src/media/CMakeFiles/p2g_media.dir/huffman.cpp.o.d"
  "/root/repo/src/media/jpeg.cpp" "src/media/CMakeFiles/p2g_media.dir/jpeg.cpp.o" "gcc" "src/media/CMakeFiles/p2g_media.dir/jpeg.cpp.o.d"
  "/root/repo/src/media/mjpeg.cpp" "src/media/CMakeFiles/p2g_media.dir/mjpeg.cpp.o" "gcc" "src/media/CMakeFiles/p2g_media.dir/mjpeg.cpp.o.d"
  "/root/repo/src/media/quant.cpp" "src/media/CMakeFiles/p2g_media.dir/quant.cpp.o" "gcc" "src/media/CMakeFiles/p2g_media.dir/quant.cpp.o.d"
  "/root/repo/src/media/yuv.cpp" "src/media/CMakeFiles/p2g_media.dir/yuv.cpp.o" "gcc" "src/media/CMakeFiles/p2g_media.dir/yuv.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/p2g_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
