#!/usr/bin/env bash
# Tier-1 gate: configure, build and run the full test suite.
#
# Usage:
#   scripts/tier1.sh                 # plain RelWithDebInfo build
#   scripts/tier1.sh thread          # under ThreadSanitizer
#   scripts/tier1.sh address         # under AddressSanitizer
#   scripts/tier1.sh undefined       # under UndefinedBehaviorSanitizer
#
# Environment:
#   P2G_WERROR=ON       promote -Wall -Wextra to -Werror
#   P2G_CLANG_TIDY=ON   run clang-tidy over every target (needs the binary
#                       on PATH; the build warns and continues without it)
#
# Sanitized builds go to build-tsan/, build-asan/ or build-ubsan/ so they
# never pollute the regular build/ tree.
set -euo pipefail

repo="$(cd "$(dirname "$0")/.." && pwd)"
sanitize="${1:-}"

case "$sanitize" in
  "")        build_dir="$repo/build" ;;
  thread)    build_dir="$repo/build-tsan" ;;
  address)   build_dir="$repo/build-asan" ;;
  undefined) build_dir="$repo/build-ubsan" ;;
  *)
    echo "usage: $0 [thread|address|undefined]" >&2
    exit 2
    ;;
esac

t_start=$(date +%s)
cmake -S "$repo" -B "$build_dir" \
  -DP2G_SANITIZE="$sanitize" \
  -DP2G_WERROR="${P2G_WERROR:-OFF}" \
  -DP2G_CLANG_TIDY="${P2G_CLANG_TIDY:-OFF}"
cmake --build "$build_dir" -j"$(nproc)"
t_built=$(date +%s)

# A sanitizer report must fail the test that produced it, and that failure
# must reach our caller. halt_on_error stops at the first report instead of
# limping on; the explicit rc capture keeps the ctest exit code authoritative
# even if this script later grows post-test steps.
export ASAN_OPTIONS="${ASAN_OPTIONS:-exitcode=1:halt_on_error=1:detect_leaks=1}"
export TSAN_OPTIONS="${TSAN_OPTIONS:-exitcode=66:halt_on_error=1}"
export UBSAN_OPTIONS="${UBSAN_OPTIONS:-print_stacktrace=1:halt_on_error=1}"

# Benchmarks carry the `bench` ctest label (and configuration) and are not
# part of the gate; run them explicitly via `ctest -C bench -L bench` or
# scripts/bench_report.sh. Chaos sweeps carry the `chaos` label and run via
# scripts/chaos.sh, p2gcheck schedule-exploration sweeps carry `check`, and
# the multi-process soak driver carries `soak` (scripts/soak.sh); the gate
# only runs the fast smoke entries below.
rc=0
ctest --test-dir "$build_dir" --output-on-failure -LE "bench|chaos|check|soak" -j"$(nproc)" || rc=$?
if [ "$rc" -ne 0 ]; then
  echo "tier1: ctest failed with exit code $rc" >&2
fi

# One fast chaos smoke seed keeps the fault-tolerance path on the gate
# without paying for the full sweep.
if [ "$rc" -eq 0 ]; then
  ctest --test-dir "$build_dir" --output-on-failure -L chaos -R chaos_sweep_seed1 || rc=$?
  if [ "$rc" -ne 0 ]; then
    echo "tier1: chaos smoke failed with exit code $rc" >&2
  fi
fi

# A short p2gcheck sweep keeps the concurrency checker (and the seeded-bug
# fixtures it must keep finding) on the gate; scripts/check.sh or
# `ctest -L check` run the wider exploration.
if [ "$rc" -eq 0 ]; then
  "$build_dir/tools/p2gcheck" --seeds 25 || rc=$?
  if [ "$rc" -ne 0 ]; then
    echo "tier1: p2gcheck smoke failed with exit code $rc" >&2
  fi
fi

# One real 3-process socket-transport run keeps the out-of-process cluster
# path (fork/exec, hub routing, termination detection) on the gate;
# scripts/soak.sh runs the longer transport sweeps.
if [ "$rc" -eq 0 ]; then
  "$build_dir/tools/p2gnode" --master --workload mul2 --nodes 3 || rc=$?
  if [ "$rc" -ne 0 ]; then
    echo "tier1: p2gnode multi-process smoke failed with exit code $rc" >&2
  fi
fi
t_done=$(date +%s)
echo "tier1: ${sanitize:-plain} build $((t_built - t_start))s," \
  "tests $((t_done - t_built))s, total $((t_done - t_start))s," \
  "modes [sanitize=${sanitize:-none} werror=${P2G_WERROR:-OFF}" \
  "clang-tidy=${P2G_CLANG_TIDY:-OFF} chaos-smoke p2gcheck-smoke" \
  "multiprocess-smoke analysis-gate]," \
  "$([ "$rc" -eq 0 ] && echo OK || echo "FAIL rc=$rc")"
exit "$rc"
