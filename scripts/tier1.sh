#!/usr/bin/env bash
# Tier-1 gate: configure, build and run the full test suite.
#
# Usage:
#   scripts/tier1.sh                 # plain RelWithDebInfo build
#   scripts/tier1.sh thread          # under ThreadSanitizer
#   scripts/tier1.sh address         # under AddressSanitizer
#
# Sanitized builds go to build-tsan/ or build-asan/ so they never pollute
# the regular build/ tree.
set -euo pipefail

repo="$(cd "$(dirname "$0")/.." && pwd)"
sanitize="${1:-}"

case "$sanitize" in
  "")       build_dir="$repo/build" ;;
  thread)   build_dir="$repo/build-tsan" ;;
  address)  build_dir="$repo/build-asan" ;;
  *)
    echo "usage: $0 [thread|address]" >&2
    exit 2
    ;;
esac

cmake -S "$repo" -B "$build_dir" -DP2G_SANITIZE="$sanitize"
cmake --build "$build_dir" -j"$(nproc)"
ctest --test-dir "$build_dir" --output-on-failure -j"$(nproc)"
