#!/usr/bin/env bash
# Chaos sweep: run the end-to-end fault-injection test across a grid of
# drop rates and seeds (optionally with a scripted mid-run crash) and
# report a pass/fail table. Every configuration must terminate and produce
# bit-exact field contents versus a fault-free run.
#
# Usage:
#   scripts/chaos.sh                       # default grid, no crash
#   scripts/chaos.sh --crash-at 60         # crash the stage1 owner after
#                                          # 60 bus messages in every run
#   scripts/chaos.sh --seeds "1 2 3 4" --drops "0.05 0.2"
#
# Environment:
#   P2G_CHAOS_BUILD_DIR   build tree holding tests/chaos_test
#                         (default: <repo>/build)
set -euo pipefail

repo="$(cd "$(dirname "$0")/.." && pwd)"
build_dir="${P2G_CHAOS_BUILD_DIR:-$repo/build}"
seeds="1 2 3 4 5"
drops="0.05 0.1 0.2"
crash_at=""

while [ $# -gt 0 ]; do
  case "$1" in
    --seeds)    seeds="$2"; shift 2 ;;
    --drops)    drops="$2"; shift 2 ;;
    --crash-at) crash_at="$2"; shift 2 ;;
    *)
      echo "usage: $0 [--seeds \"1 2 ...\"] [--drops \"0.05 ...\"] [--crash-at N]" >&2
      exit 2
      ;;
  esac
done

binary="$build_dir/tests/chaos_test"
if [ ! -x "$binary" ]; then
  echo "chaos: $binary not built; run cmake --build $build_dir first" >&2
  exit 2
fi

total=0
failed=0
t_start=$(date +%s)
for drop in $drops; do
  for seed in $seeds; do
    total=$((total + 1))
    env_desc="seed=$seed drop=$drop${crash_at:+ crash_at=$crash_at}"
    if P2G_CHAOS_SEED="$seed" P2G_CHAOS_DROP="$drop" \
       P2G_CHAOS_CRASH_AT="${crash_at:--1}" \
       "$binary" --gtest_filter='ChaosSweep.*' --gtest_brief=1 \
       > /tmp/p2g_chaos_$$.log 2>&1; then
      echo "chaos: PASS $env_desc"
    else
      failed=$((failed + 1))
      echo "chaos: FAIL $env_desc"
      sed 's/^/chaos:   /' /tmp/p2g_chaos_$$.log
    fi
  done
done
rm -f /tmp/p2g_chaos_$$.log
t_done=$(date +%s)

echo "chaos: $((total - failed))/$total configurations passed in $((t_done - t_start))s"
[ "$failed" -eq 0 ]
