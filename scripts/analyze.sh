#!/usr/bin/env bash
# One-shot static-analysis gate over the whole tree:
#
#   1. clang-tidy over the framework C++ sources (src/), honouring the
#      checked-in .clang-tidy config. Findings are filtered against the
#      `tidy` regexes in scripts/analyze_baseline.txt, so known accepted
#      findings don't fail the gate while new ones do. Skipped with a
#      notice when no clang-tidy binary is on PATH (the kernel-language
#      analyses below still run).
#   2. p2glint --werror and p2gdep --werror over every shipped example
#      program (examples/programs/*.p2g): the examples must be completely
#      clean, warnings included (kInfo dependence reports are exempt from
#      --werror by design).
#   3. The seeded-bug lint fixtures (examples/lint/*.p2g) checked against
#      their baselined diagnostic codes: each fixture must keep producing
#      exactly the finding it was planted for.
#
# Usage:
#   scripts/analyze.sh [build-dir]      # default: <repo>/build
#
# Wired into ctest as the `analysis`-labeled static_analysis_gate test, so
# the tier-1 run (`ctest -LE "bench|chaos|check"`) includes it.
set -euo pipefail

repo="$(cd "$(dirname "$0")/.." && pwd)"
build="${1:-$repo/build}"
baseline="$repo/scripts/analyze_baseline.txt"
rc=0

if [ ! -x "$build/tools/p2glint" ] || [ ! -x "$build/tools/p2gdep" ]; then
  echo "analyze: p2glint/p2gdep not built in $build — build first" >&2
  exit 2
fi

# ---------------------------------------------------------- 1. clang-tidy
if command -v clang-tidy >/dev/null 2>&1; then
  if [ ! -f "$build/compile_commands.json" ]; then
    cmake -S "$repo" -B "$build" -DCMAKE_EXPORT_COMPILE_COMMANDS=ON \
      >/dev/null
  fi
  # Baselined findings: regexes on `tidy ` lines of the baseline file.
  tidy_baseline="$(sed -n 's/^tidy //p' "$baseline")"
  tidy_out="$(mktemp)"
  find "$repo/src" -name '*.cpp' -print0 |
    xargs -0 clang-tidy -p "$build" --quiet 2>/dev/null |
    grep -E "warning:|error:" >"$tidy_out" || true
  if [ -n "$tidy_baseline" ]; then
    fresh="$(grep -v -E -f <(printf '%s\n' "$tidy_baseline") "$tidy_out" || true)"
  else
    fresh="$(cat "$tidy_out")"
  fi
  rm -f "$tidy_out"
  if [ -n "$fresh" ]; then
    echo "analyze: clang-tidy findings not in the baseline:" >&2
    printf '%s\n' "$fresh" >&2
    rc=1
  else
    echo "analyze: clang-tidy clean (baseline applied)"
  fi
else
  echo "analyze: clang-tidy not on PATH — skipping C++ static analysis"
fi

# --------------------------------------- 2. example programs must be clean
for program in "$repo"/examples/programs/*.p2g; do
  if ! "$build/tools/p2glint" --werror "$program" >/dev/null; then
    echo "analyze: p2glint --werror failed on $program" >&2
    rc=1
  fi
  if ! "$build/tools/p2gdep" --werror "$program" >/dev/null; then
    echo "analyze: p2gdep --werror failed on $program" >&2
    rc=1
  fi
done
echo "analyze: examples/programs/*.p2g lint+dep clean"

# ------------------------------- 3. fixtures must keep their seeded bugs
while read -r tool path code; do
  case "$tool" in
    lint) out="$("$build/tools/p2glint" "$repo/$path" || true)" ;;
    *) continue ;;
  esac
  if ! printf '%s' "$out" | grep -q "$code"; then
    echo "analyze: fixture $path no longer produces $code" >&2
    rc=1
  fi
done < <(grep -E '^lint ' "$baseline")
echo "analyze: seeded fixtures still flagged"

if [ "$rc" -eq 0 ]; then
  echo "analyze: OK"
else
  echo "analyze: FAIL" >&2
fi
exit "$rc"
