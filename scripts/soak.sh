#!/usr/bin/env bash
# Multi-process soak driver: repeated real-cluster runs of every built-in
# workload over both transports, cross-checking that the captured-output
# checksum is identical for every (workload, node-count, transport)
# combination — the socket path, the shared-memory data plane and the
# in-run supervision must never change the data. One crash-injection round
# per workload proves a killed node is detected and the supervisor still
# terminates.
#
# Usage:
#   scripts/soak.sh [p2gnode-binary] [rounds]
#
# Defaults: build/tools/p2gnode, 3 rounds. Registered as the `soak`-labeled
# ctest entry (excluded from tier-1); tier1.sh runs a single 3-process
# smoke instead.
set -euo pipefail

repo="$(cd "$(dirname "$0")/.." && pwd)"
p2gnode="${1:-$repo/build/tools/p2gnode}"
rounds="${2:-3}"

if [ ! -x "$p2gnode" ]; then
  echo "soak: node binary '$p2gnode' not found (build first)" >&2
  exit 2
fi

tmp="$(mktemp -d)"
trap 'rm -rf "$tmp"' EXIT

checksum_of() {
  # Pulls "checksum": "..." out of a run's JSON summary.
  sed -n 's/.*"checksum": "\([0-9a-f]*\)".*/\1/p' "$1"
}

fail=0
for workload in mul2 kmeans pipeline; do
  reference=""
  for round in $(seq 1 "$rounds"); do
    for nodes in 2 3; do
      for transport in socket shm; do
        shm_flag=""
        [ "$transport" = shm ] && shm_flag="--shm"
        json="$tmp/${workload}_${nodes}_${transport}_${round}.json"
        if ! "$p2gnode" --master --workload "$workload" --nodes "$nodes" \
            $shm_flag --json "$json" > /dev/null; then
          echo "soak: FAIL $workload nodes=$nodes $transport round=$round" \
               "(non-zero exit)" >&2
          fail=1
          continue
        fi
        sum="$(checksum_of "$json")"
        if [ -z "$reference" ]; then
          reference="$sum"
        elif [ "$sum" != "$reference" ]; then
          echo "soak: MISMATCH $workload nodes=$nodes $transport" \
               "round=$round: $sum != $reference" >&2
          fail=1
        fi
      done
    done
  done
  echo "soak: $workload x$rounds rounds (2/3 nodes, socket+shm):" \
       "checksum $reference"

  # Crash round: node1 dies 5 ms into the run; the supervisor must fence
  # it and exit on its own (non-zero, since a node died — but promptly).
  if "$p2gnode" --master --workload "$workload" --nodes 2 \
      --crash node1:5 --watchdog-ms 20000 > "$tmp/crash.out"; then
    echo "soak: $workload crash round reported success despite a dead node" >&2
    fail=1
  fi
  if ! grep -q "dead: node1" "$tmp/crash.out"; then
    echo "soak: $workload crash round did not report node1 dead" >&2
    cat "$tmp/crash.out" >&2
    fail=1
  fi
  if grep -q "TIMED OUT" "$tmp/crash.out"; then
    echo "soak: $workload crash round tripped the watchdog" >&2
    fail=1
  fi
  echo "soak: $workload crash round: node1 fenced, supervisor terminated"
done

if [ "$fail" -ne 0 ]; then
  echo "soak: FAILED" >&2
  exit 1
fi
echo "soak: OK"
