#!/usr/bin/env bash
# Runs the dispatch/fetch micro-bench suite and records the numbers in
# BENCH_<issue>.json at the repo root so future PRs have a perf trajectory
# to compare against.
#
# Baseline and new numbers land in the SAME file. The baseline is the
# pre-PR code path, reconstructed via ablation switches compiled into the
# current binaries:
#   - fetch:    deep-copy fetch_whole/fetch  vs  zero-copy views
#   - dispatch: analyzer_batch=false (one event per lock) vs batched
#
# Usage:
#   scripts/bench_report.sh            # writes BENCH_4.json from build/
#   BUILD_DIR=... ISSUE=5 scripts/bench_report.sh
set -euo pipefail

repo="$(cd "$(dirname "$0")/.." && pwd)"
build_dir="${BUILD_DIR:-$repo/build}"
issue="${ISSUE:-4}"
out="$repo/BENCH_${issue}.json"

cmake --build "$build_dir" -j"$(nproc)" \
  --target bench_field_ops bench_dispatch_overhead

tmp="$(mktemp -d)"
trap 'rm -rf "$tmp"' EXIT

"$build_dir/bench/bench_field_ops" \
  --benchmark_out="$tmp/field.json" --benchmark_out_format=json \
  --benchmark_min_time="${P2G_BENCH_MIN_TIME:-0.2}"
"$build_dir/bench/bench_dispatch_overhead" \
  --benchmark_out="$tmp/dispatch.json" --benchmark_out_format=json \
  --benchmark_filter='BM_DispatchPerInstance(Unbatched)?/'

python3 - "$tmp/field.json" "$tmp/dispatch.json" "$out" "$issue" <<'PY'
import json, sys

field_path, dispatch_path, out_path, issue = sys.argv[1:5]
field = json.load(open(field_path))
dispatch = json.load(open(dispatch_path))


def by_name(report):
    return {b["name"]: b for b in report["benchmarks"]}


f, d = by_name(field), by_name(dispatch)


def pair(baseline, new, value):
    return {
        "baseline": baseline,
        "new": new,
        "speedup": round(baseline / new, 3) if new else None,
        **value,
    }


fetch_whole = {}
for size in (64, 4096, 262144):
    copy = f[f"BM_FetchWholeCopy/{size}"]["real_time"]
    view = f[f"BM_FetchWholeView/{size}"]["real_time"]
    fetch_whole[str(size)] = pair(copy, view, {"unit": "ns/op"})

fetch_row = pair(
    f["BM_FetchRowCopy"]["real_time"],
    f["BM_FetchRowView"]["real_time"],
    {"unit": "ns/op"},
)

dispatch_per_instance = {}
for width in (16, 256, 1024):
    single = d[f"BM_DispatchPerInstanceUnbatched/{width}"]["sec_per_instance"]
    batched = d[f"BM_DispatchPerInstance/{width}"]["sec_per_instance"]
    dispatch_per_instance[str(width)] = pair(
        single * 1e9, batched * 1e9, {"unit": "ns/instance"}
    )

report = {
    "issue": int(issue),
    "generated_by": "scripts/bench_report.sh",
    "context": field.get("context", {}),
    "baseline_definition": {
        "fetch": "deep-copy FieldStorage::fetch_whole/fetch (pre-PR path)",
        "dispatch": "RunOptions::analyzer_batch=false, one event per "
                    "queue lock (pre-PR path)",
    },
    "fetch_whole_ns": fetch_whole,
    "fetch_row_ns": fetch_row,
    "strided_column_view_ns": round(
        f["BM_FetchColumnStridedView"]["real_time"], 2
    ),
    "dispatch_per_instance_ns": dispatch_per_instance,
}
with open(out_path, "w") as fh:
    json.dump(report, fh, indent=2)
    fh.write("\n")
print(f"wrote {out_path}")
PY
