#!/usr/bin/env bash
# Runs the dispatch/fetch micro-bench suite and records the numbers in
# BENCH_<issue>.json at the repo root so future PRs have a perf trajectory
# to compare against.
#
# Baseline and new numbers land in the SAME file. The baseline is the
# pre-PR code path, reconstructed via ablation switches compiled into the
# current binaries:
#   - fetch:    deep-copy fetch_whole/fetch  vs  zero-copy views
#   - dispatch: analyzer_batch=false (one event per lock) vs batched
#
# Usage:
#   scripts/bench_report.sh            # writes BENCH_4.json from build/
#   BUILD_DIR=... ISSUE=5 scripts/bench_report.sh
#   ISSUE=6 scripts/bench_report.sh    # tracing-overhead report
#
# ISSUE=6 records the causal-tracing overhead instead: dispatch and MJPEG
# with collect_trace on vs off vs flight-recorder-only (the baseline is
# tracing disabled, i.e. the pre-PR hot path plus one null check).
set -euo pipefail

repo="$(cd "$(dirname "$0")/.." && pwd)"
build_dir="${BUILD_DIR:-$repo/build}"
issue="${ISSUE:-4}"
out="$repo/BENCH_${issue}.json"

if [ "$issue" = 6 ]; then
  cmake --build "$build_dir" -j"$(nproc)" --target bench_trace_overhead

  tmp="$(mktemp -d)"
  trap 'rm -rf "$tmp"' EXIT

  "$build_dir/bench/bench_trace_overhead" \
    --benchmark_out="$tmp/trace.json" --benchmark_out_format=json \
    --benchmark_min_time="${P2G_BENCH_MIN_TIME:-0.2}" \
    --benchmark_repetitions="${P2G_BENCH_REPS:-3}" \
    --benchmark_report_aggregates_only=true

  python3 - "$tmp/trace.json" "$out" <<'PY'
import json, sys

trace_path, out_path = sys.argv[1:3]
doc = json.load(open(trace_path))
by_name = {b["name"]: b for b in doc["benchmarks"]}


def median(name):
    return by_name[f"{name}_median"]


def overhead(base, new):
    return round((new - base) / base, 4) if base else None


dispatch = {}
for width in (16, 256, 1024):
    off = median(f"BM_DispatchTraceOff/{width}")["sec_per_instance"] * 1e9
    on = median(f"BM_DispatchTraceOn/{width}")["sec_per_instance"] * 1e9
    flight = (
        median(f"BM_DispatchFlightOnly/{width}")["sec_per_instance"] * 1e9
    )
    dispatch[str(width)] = {
        "off": off,
        "trace": on,
        "flight_only": flight,
        "trace_overhead": overhead(off, on),
        "flight_overhead": overhead(off, flight),
        "unit": "ns/instance",
    }

mjpeg = {}
off = median("BM_MjpegTraceOff")["real_time"]
on = median("BM_MjpegTraceOn")["real_time"]
flight = median("BM_MjpegFlightOnly")["real_time"]
mjpeg = {
    "off": off,
    "trace": on,
    "flight_only": flight,
    "trace_overhead": overhead(off, on),
    "flight_overhead": overhead(off, flight),
    "unit": "ms/clip (QCIF x4, median)",
}

report = {
    "issue": 6,
    "generated_by": "scripts/bench_report.sh",
    "context": doc.get("context", {}),
    "baseline_definition": {
        "trace": "RunOptions::collect_trace=false, flight_recorder=false "
                 "(hot path: one null check)",
    },
    "acceptance": "mjpeg trace_overhead < 0.05 (real kernel work); "
                  "dispatch rows bound the worst case (empty bodies, "
                  "one span per item) and are noise-dominated on small "
                  "VMs; disabled paths unchanged within noise",
    "dispatch_per_instance_ns": dispatch,
    "mjpeg_clip_ms": mjpeg,
}
with open(out_path, "w") as fh:
    json.dump(report, fh, indent=2)
    fh.write("\n")
print(f"wrote {out_path}")
PY
  exit 0
fi

# ISSUE=8: independence-certificate fast path. Baseline is the identical
# program without embedded certificates (the pre-PR analyzer path: a full
# fine-grained region check on every satisfied-candidate scan).
if [ "$issue" = 8 ]; then
  cmake --build "$build_dir" -j"$(nproc)" --target bench_dispatch_overhead

  tmp="$(mktemp -d)"
  trap 'rm -rf "$tmp"' EXIT

  # Random interleaving: on small VMs sequential A/B runs inherit
  # allocator/thermal state from whoever ran first; interleaved repetition
  # order removes that bias from the medians.
  "$build_dir/bench/bench_dispatch_overhead" \
    --benchmark_out="$tmp/dispatch.json" --benchmark_out_format=json \
    --benchmark_min_time="${P2G_BENCH_MIN_TIME:-0.2}" \
    --benchmark_repetitions="${P2G_BENCH_REPS:-5}" \
    --benchmark_enable_random_interleaving=true \
    --benchmark_report_aggregates_only=true \
    --benchmark_filter='BM_DispatchChainedPerInstance(Certified)?/'

  python3 - "$tmp/dispatch.json" "$out" <<'PY'
import json, sys

dispatch_path, out_path = sys.argv[1:3]
doc = json.load(open(dispatch_path))
by_name = {b["name"]: b for b in doc["benchmarks"]}


def median(name):
    return by_name[f"{name}_median"]


dispatch = {}
for width in (16, 256, 1024):
    plain = median(f"BM_DispatchChainedPerInstance/{width}/manual_time")[
        "cpu_per_instance"
    ]
    certified = median(
        f"BM_DispatchChainedPerInstanceCertified/{width}/manual_time"
    )
    cert = certified["cpu_per_instance"]
    dispatch[str(width)] = {
        "baseline": plain * 1e9,
        "certified": cert * 1e9,
        "speedup": round(plain / cert, 3) if cert else None,
        "region_checks_skipped_per_instance": round(
            certified["skips_per_instance"], 3
        ),
        "unit": "process-cpu-ns/instance",
    }

report = {
    "issue": 8,
    "generated_by": "scripts/bench_report.sh",
    "context": doc.get("context", {}),
    "baseline_definition": {
        "dispatch": "identical program without Program::certify() — every "
                    "satisfied-candidate scan pays the fine-grained "
                    "region check (pre-PR analyzer path)",
    },
    "acceptance": "certified cpu_per_instance <= baseline (measurable "
                  "improvement in total process CPU, the stable metric "
                  "on single-vCPU runners where wall time is scheduler "
                  "noise; skips_per_instance ~1.0 proves the fast path "
                  "engaged)",
    "dispatch_per_instance_ns": dispatch,
}
with open(out_path, "w") as fh:
    json.dump(report, fh, indent=2)
    fh.write("\n")
print(f"wrote {out_path}")
PY
  exit 0
fi

# ISSUE=10: out-of-process transport + shared-memory data plane. The
# metric is data-plane economics, not time: bytes_copied_per_frame for the
# same multi-process pipeline run over the socket transport (baseline:
# every frame serialized onto the wire) vs the shm data plane (frames
# travel as arena offsets; the target is ~0). Checksums prove the two
# transports computed identical data.
if [ "$issue" = 10 ]; then
  cmake --build "$build_dir" -j"$(nproc)" --target p2gnode

  tmp="$(mktemp -d)"
  trap 'rm -rf "$tmp"' EXIT

  nodes="${P2G_BENCH_NODES:-3}"
  "$build_dir/tools/p2gnode" --master --workload pipeline \
    --nodes "$nodes" --json "$tmp/socket.json" > /dev/null
  "$build_dir/tools/p2gnode" --master --workload pipeline \
    --nodes "$nodes" --shm --json "$tmp/shm.json" > /dev/null

  python3 - "$tmp/socket.json" "$tmp/shm.json" "$out" <<'PY'
import json, sys

socket_path, shm_path, out_path = sys.argv[1:4]
socket = json.load(open(socket_path))
shm = json.load(open(shm_path))

assert socket["checksum"] == shm["checksum"], (
    "transports disagree on the data: "
    f"{socket['checksum']} != {shm['checksum']}"
)

report = {
    "issue": 10,
    "generated_by": "scripts/bench_report.sh",
    "workload": socket["workload"],
    "nodes": socket["nodes"],
    "baseline_definition": {
        "socket": "real multi-process run over the TCP socket transport: "
                  "every cross-node store serializes its payload into a "
                  "length-prefixed frame (the pre-shm data plane)",
    },
    "acceptance": "bytes_copied_per_frame ~0 on the shm data plane for "
                  "the whole-frame pipeline workload (frames ship as "
                  "arena offsets, receivers adopt mapped pages); "
                  "checksums bit-exact across transports",
    "checksum": socket["checksum"],
    "bytes_copied_per_frame": {
        "socket": socket["bytes_copied_per_frame"],
        "shm": shm["bytes_copied_per_frame"],
    },
    "data_frames": {
        "socket": socket["frames"],
        "shm": shm["frames"],
    },
    "copied_bytes": {
        "socket": socket["copied_bytes"],
        "shm": shm["copied_bytes"],
    },
    "wall_s": {
        "socket": socket["wall_s"],
        "shm": shm["wall_s"],
    },
}
with open(out_path, "w") as fh:
    json.dump(report, fh, indent=2)
    fh.write("\n")
print(f"wrote {out_path}")
PY
  exit 0
fi

# ISSUE=9: sharded dependency analyzer. Baseline is analyzer_shards=1 (the
# pre-PR single analyzer thread, bit-identical dispatch). The metric is the
# maximum per-shard analyzer-thread CPU — the sharded analyzer's critical
# path, which becomes wall time once each shard has its own core; on the
# single-vCPU runners wall time and process CPU cannot show the split.
if [ "$issue" = 9 ]; then
  cmake --build "$build_dir" -j"$(nproc)" --target bench_dispatch_overhead

  tmp="$(mktemp -d)"
  trap 'rm -rf "$tmp"' EXIT

  # Random interleaving: on small VMs sequential A/B runs inherit
  # allocator/thermal state from whoever ran first; interleaved repetition
  # order removes that bias from the medians.
  "$build_dir/bench/bench_dispatch_overhead" \
    --benchmark_out="$tmp/dispatch.json" --benchmark_out_format=json \
    --benchmark_min_time="${P2G_BENCH_MIN_TIME:-0.2}" \
    --benchmark_repetitions="${P2G_BENCH_REPS:-5}" \
    --benchmark_enable_random_interleaving=true \
    --benchmark_report_aggregates_only=true \
    --benchmark_filter='BM_DispatchShardedPerInstance/'

  python3 - "$tmp/dispatch.json" "$out" <<'PY'
import json, sys

dispatch_path, out_path = sys.argv[1:3]
doc = json.load(open(dispatch_path))
by_name = {b["name"]: b for b in doc["benchmarks"]}


def median(name):
    return by_name[f"{name}_median"]


sharded = {}
for width in (4, 8):
    row = {}
    base = None
    for shards in (1, 2, 4):
        m = median(f"BM_DispatchShardedPerInstance/{width}/{shards}"
                   "/manual_time")
        ns = m["cpu_per_instance"] * 1e9
        if shards == 1:
            base = ns
        row[str(shards)] = {
            "max_shard_cpu_per_instance": ns,
            "speedup_vs_1_shard": round(base / ns, 3) if ns else None,
            "region_checks_skipped_per_instance": round(
                m["skips_per_instance"], 3
            ),
        }
    row["unit"] = "max-analyzer-shard-cpu-ns/instance"
    sharded[f"width_{width}"] = row

report = {
    "issue": 9,
    "generated_by": "scripts/bench_report.sh",
    "context": doc.get("context", {}),
    "baseline_definition": {
        "dispatch": "analyzer_shards=1 — the pre-PR single analyzer "
                    "thread (same binary; shards=1 takes the identical "
                    "code path and dispatches a bit-identical instance "
                    "set, see analyzer_shards_test)",
    },
    "acceptance": "max_shard_cpu_per_instance improves monotonically "
                  "1 -> 2 -> 4 shards at each width (the critical-path "
                  "CPU a multi-core host turns into wall time); "
                  "skips_per_instance ~1.0 at every shard count proves "
                  "the certified fast path survives sharding",
    "sharded_dispatch_per_instance_ns": sharded,
}
with open(out_path, "w") as fh:
    json.dump(report, fh, indent=2)
    fh.write("\n")
print(f"wrote {out_path}")
PY
  exit 0
fi

cmake --build "$build_dir" -j"$(nproc)" \
  --target bench_field_ops bench_dispatch_overhead

tmp="$(mktemp -d)"
trap 'rm -rf "$tmp"' EXIT

"$build_dir/bench/bench_field_ops" \
  --benchmark_out="$tmp/field.json" --benchmark_out_format=json \
  --benchmark_min_time="${P2G_BENCH_MIN_TIME:-0.2}"
"$build_dir/bench/bench_dispatch_overhead" \
  --benchmark_out="$tmp/dispatch.json" --benchmark_out_format=json \
  --benchmark_filter='BM_DispatchPerInstance(Unbatched)?/'

python3 - "$tmp/field.json" "$tmp/dispatch.json" "$out" "$issue" <<'PY'
import json, sys

field_path, dispatch_path, out_path, issue = sys.argv[1:5]
field = json.load(open(field_path))
dispatch = json.load(open(dispatch_path))


def by_name(report):
    return {b["name"]: b for b in report["benchmarks"]}


f, d = by_name(field), by_name(dispatch)


def pair(baseline, new, value):
    return {
        "baseline": baseline,
        "new": new,
        "speedup": round(baseline / new, 3) if new else None,
        **value,
    }


fetch_whole = {}
for size in (64, 4096, 262144):
    copy = f[f"BM_FetchWholeCopy/{size}"]["real_time"]
    view = f[f"BM_FetchWholeView/{size}"]["real_time"]
    fetch_whole[str(size)] = pair(copy, view, {"unit": "ns/op"})

fetch_row = pair(
    f["BM_FetchRowCopy"]["real_time"],
    f["BM_FetchRowView"]["real_time"],
    {"unit": "ns/op"},
)

dispatch_per_instance = {}
for width in (16, 256, 1024):
    single = d[f"BM_DispatchPerInstanceUnbatched/{width}"]["sec_per_instance"]
    batched = d[f"BM_DispatchPerInstance/{width}"]["sec_per_instance"]
    dispatch_per_instance[str(width)] = pair(
        single * 1e9, batched * 1e9, {"unit": "ns/instance"}
    )

report = {
    "issue": int(issue),
    "generated_by": "scripts/bench_report.sh",
    "context": field.get("context", {}),
    "baseline_definition": {
        "fetch": "deep-copy FieldStorage::fetch_whole/fetch (pre-PR path)",
        "dispatch": "RunOptions::analyzer_batch=false, one event per "
                    "queue lock (pre-PR path)",
    },
    "fetch_whole_ns": fetch_whole,
    "fetch_row_ns": fetch_row,
    "strided_column_view_ns": round(
        f["BM_FetchColumnStridedView"]["real_time"], 2
    ),
    "dispatch_per_instance_ns": dispatch_per_instance,
}
with open(out_path, "w") as fh:
    json.dump(report, fh, indent=2)
    fh.write("\n")
print(f"wrote {out_path}")
PY
